#!/usr/bin/env python3
"""An LSM key-value store on three storage stacks (the E5 scenario).

The same RocksDB-like store -- memtable, leveled compaction, WAL -- runs
over a conventional SSD (with and without TRIM) and a ZNS device with a
ZenFS-style zone backend, under an identical overwrite-heavy workload.
The printout decomposes write amplification into what the application
itself causes (compaction, WAL) and what each interface adds below it.

Run: ``python examples/lsm_kv_store.py``
"""

import numpy as np

from repro.apps.lsm import BlockFileBackend, LSMConfig, LSMStore, ZoneFileBackend
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.ftl.device import ConventionalSSD
from repro.ftl.ftl import FTLConfig
from repro.zns.device import ZNSDevice

N_KEYS = 150_000
OPS = 350_000
CFG = LSMConfig(memtable_pages=64, level0_pages=768, max_table_pages=32)


def drive(store: LSMStore) -> None:
    rng = np.random.default_rng(0)
    for i in range(OPS):
        store.put(int(rng.integers(0, N_KEYS)), i)


def report(label: str, store: LSMStore, flash_bytes: int) -> None:
    app_wa = store.stats.app_write_amplification(store.backend.page_size)
    total_wa = store.total_write_amplification(flash_bytes)
    print(f"{label:18s} app WA {app_wa:5.2f}  x  interface tax "
          f"{total_wa / app_wa:4.2f}  =  total {total_wa:5.2f}")


def main() -> None:
    print(f"workload: {OPS:,} puts over {N_KEYS:,} keys "
          f"(128 B entries, overwrite-heavy)\n")

    for label, trim in [("block, no TRIM", False), ("block, TRIM", True)]:
        ssd = ConventionalSSD(FlashGeometry.small(), FTLConfig(op_ratio=0.07))
        store = LSMStore(
            BlockFileBackend(ssd, trim_on_delete=trim, allocation_strategy="aged"),
            CFG,
        )
        drive(store)
        report(label, store, ssd.ftl.nand.physical_bytes_written())

    zoned = ZonedGeometry(
        flash=FlashGeometry.small(), blocks_per_zone=2, max_active_zones=14
    )
    device = ZNSDevice(zoned)
    store = LSMStore(ZoneFileBackend(device), CFG)
    drive(store)
    report("zns, zenfs-like", store, device.nand.physical_bytes_written())
    backend = store.backend
    print(f"\nzone backend details: {backend.stats.zones_reset} zone resets, "
          f"{backend.stats.free_zone_resets} were free "
          f"(fully-dead zones), {backend.stats.pages_relocated} pages relocated")
    print("level sizes (pages):", store.level_sizes_pages())

    # Correctness spot check: the newest value for a sample of keys.
    rng = np.random.default_rng(0)
    truth = {}
    for i in range(OPS):
        truth[int(rng.integers(0, N_KEYS))] = i
    sample = list(truth.items())[::4001]
    assert all(store.get(k) == v for k, v in sample)
    print(f"verified {len(sample)} random keys read back correctly")


if __name__ == "__main__":
    main()
