#!/usr/bin/env python3
"""Sharing 14 active zones among bursty tenants (the E8 scenario, §4.2).

Four kernel-bypass applications share one ZNS SSD whose hardware caps
simultaneously-active zones at 14 (the paper's reference device). Tenants
alternate idle (1 zone) and burst (8 zones) phases. Three allocation
policies contend:

- static:     fixed share of 3 zones each; bursts starve while slots idle
- dynamic:    first-come-first-served; bursts fly, isolation suffers
- fair-share: guaranteed 3 each, idle slots borrowable

Run: ``python examples/multi_tenant_zones.py``
"""

from repro.experiments.e8_active_zones import simulate_allocator
from repro.workloads.multitenant import BurstyTenant

STEPS = 20_000


def main() -> None:
    tenant = BurstyTenant(tenant_id=0, idle_zones=1, burst_zones=8)
    print(
        f"4 tenants x (idle {tenant.idle_zones} zone / burst {tenant.burst_zones} "
        f"zones), mean demand {tenant.mean_demand:.1f} zones each, "
        f"14-zone device budget\n"
    )
    print(f"{'policy':12s} {'denied':>8} {'demand met':>11} {'steps fully ok':>15} {'avg held':>9}")
    for name in ("static", "dynamic", "fair-share"):
        row = simulate_allocator(name, tenants=4, max_active=14, steps=STEPS, seed=1)
        print(
            f"{name:12s} {row['denial_rate']:8.1%} "
            f"{row['demand_satisfaction']:11.1%} "
            f"{row['fully_satisfied_steps_pct']:14.1f}% "
            f"{row['mean_zones_held']:9.2f}"
        )
    print(
        "\nTakeaway: the static strawman of §4.2 leaves the device idle "
        "while bursts starve; multiplexing recovers most of the unmet "
        "demand, and fair-share does so without letting one tenant "
        "monopolize the budget."
    )


if __name__ == "__main__":
    main()
