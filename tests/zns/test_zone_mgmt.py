"""Zone management as a first-class, failure-prone subsystem.

NVMe conformance of finish/reset on edge states, the management timing
model (command holds charged as MGMT ops, ZoneMgmtEvents on the bus),
the management fault classes (transient reset failure, finish timeout,
stuck-open zones) with their pre-mutation retry contract, and the timed
device's management gate -- reads and appends queue behind an in-flight
reset, the paper's elided hidden cost.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.flash.ops import OpKind
from repro.flash.timing import ZoneMgmtTiming
from repro.sim.engine import Engine
from repro.zns.device import TimedZNSDevice, ZNSDevice
from repro.zns.errors import (
    RetryableZnsError,
    ZoneFinishTimeoutError,
    ZoneOfflineError,
    ZoneReadOnlyError,
    ZoneResetFailedError,
    ZoneStuckOpenError,
)
from repro.zns.zone import ZoneState


def tiny_geometry() -> ZonedGeometry:
    flash = FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )
    return ZonedGeometry(flash=flash, blocks_per_zone=2, max_active_zones=4)


def make_device(
    plan: FaultPlan | None = None,
    mgmt: ZoneMgmtTiming | None = None,
    **kwargs,
) -> ZNSDevice:
    faults = FaultInjector(plan) if plan is not None else None
    return ZNSDevice(tiny_geometry(), faults=faults, mgmt_timing=mgmt, **kwargs)


class _EventLog:
    def __init__(self):
        self.events = []

    def on_event(self, event) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list:
        return [e for e in self.events if getattr(e, "kind", None) == kind]


class TestNvmeEdgeSemantics:
    """Explicit NVMe zone-state-machine conformance of finish/reset."""

    def test_reset_empty_zone_is_a_noop_success(self):
        device = make_device()
        wear_before = device.nand.counters.erases
        assert device.reset_zone(0) == []
        assert device.zone(0).state is ZoneState.EMPTY
        assert device.nand.counters.erases == wear_before

    def test_reset_empty_zone_skips_fault_draws(self):
        # A no-op reset must not consume injector randomness: the
        # command never reaches the media, so nothing can bounce.
        device = make_device(FaultPlan(reset_fail_prob=1.0))
        assert device.reset_zone(0) == []
        assert device.zone(0).state is ZoneState.EMPTY

    def test_finish_full_zone_is_a_noop_success(self):
        device = make_device()
        device.write_batch(0, device.zone(0).capacity_pages)
        assert device.zone(0).state is ZoneState.FULL
        assert device.finish_zone(0) == []

    def test_finish_empty_zone_is_the_valid_zse_to_zsf_transition(self):
        device = make_device()
        assert device.finish_zone(0) == []
        zone = device.zone(0)
        assert zone.state is ZoneState.FULL
        assert zone.wp == 0

    def test_finish_open_zone_releases_its_open_slot(self):
        device = make_device()
        device.write(0, npages=1)
        assert device.zone(0).state is ZoneState.IMPLICIT_OPEN
        device.finish_zone(0)
        assert device.zone(0).state is ZoneState.FULL
        assert device.open_count == 0
        assert 0 not in device._open_order

    def test_finish_offline_and_read_only_raise_typed_errors(self):
        device = make_device(FaultPlan(zone_offline_at=((0, 1),)))
        device.write(0, npages=1)
        assert device.zone(1).state is ZoneState.OFFLINE
        with pytest.raises(ZoneOfflineError):
            device.finish_zone(1)
        device2 = make_device(FaultPlan(program_fail_prob=1.0))
        from repro.flash.errors import ProgramFaultError

        with pytest.raises(ProgramFaultError):
            device2.write(0, npages=1)
        assert device2.zone(0).state is ZoneState.READ_ONLY
        with pytest.raises(ZoneReadOnlyError):
            device2.finish_zone(0)


class TestMgmtTiming:
    def test_reset_leads_with_the_management_hold(self):
        device = make_device(mgmt=ZoneMgmtTiming(reset_us=700.0))
        device.write_batch(0, 4)
        ops = device.reset_zone(0)
        assert ops[0].kind is OpKind.MGMT
        assert ops[0].latency_us == 700.0
        assert not ops[0].uses_channel
        assert all(op.kind is OpKind.ERASE for op in ops[1:])
        assert len(ops) == 1 + tiny_geometry().blocks_per_zone

    def test_reset_of_empty_zone_charges_only_the_hold(self):
        device = make_device(mgmt=ZoneMgmtTiming(reset_us=700.0))
        ops = device.reset_zone(0)
        assert [op.kind for op in ops] == [OpKind.MGMT]

    def test_finish_scales_with_unwritten_pages(self):
        device = make_device(
            mgmt=ZoneMgmtTiming(finish_us=100.0, finish_per_page_us=10.0)
        )
        device.write_batch(0, 4)
        unwritten = device.zone(0).remaining
        (op,) = device.finish_zone(0)
        assert op.kind is OpKind.MGMT
        assert op.latency_us == 100.0 + 10.0 * unwritten

    def test_zero_timing_adds_no_ops(self):
        device = make_device(mgmt=ZoneMgmtTiming())
        device.write_batch(0, 4)
        assert all(op.kind is OpKind.ERASE for op in device.reset_zone(0))
        assert device.finish_zone(1) == []

    def test_mgmt_events_on_the_bus(self):
        device = make_device(mgmt=ZoneMgmtTiming(reset_us=700.0, open_us=5.0, close_us=3.0))
        log = device.tracer.attach(_EventLog())
        device.open_zone(0)
        device.write(0, npages=1)
        device.close_zone(0)
        device.write_batch(1, 4)
        device.reset_zone(1)
        device.finish_zone(2)
        actions = [(e.action, e.zone) for e in log.of_kind("zone-mgmt")]
        assert ("open", 0) in actions
        assert ("close", 0) in actions
        assert ("reset", 1) in actions
        assert ("finish", 2) in actions
        reset_event = next(e for e in log.of_kind("zone-mgmt") if e.action == "reset")
        assert reset_event.latency_us == 700.0

    def test_no_timing_means_no_mgmt_events(self):
        device = make_device()
        log = device.tracer.attach(_EventLog())
        device.write_batch(0, 4)
        device.reset_zone(0)
        assert log.of_kind("zone-mgmt") == []


class TestMgmtFaults:
    def test_reset_failure_is_typed_retryable_and_premutation(self):
        device = make_device(FaultPlan(seed=3, reset_fail_prob=1.0))
        device.write_batch(0, 4)
        wp_before = device.zone(0).wp
        erases_before = device.nand.counters.erases
        with pytest.raises(ZoneResetFailedError) as err:
            device.reset_zone(0)
        assert isinstance(err.value, RetryableZnsError)
        assert err.value.retryable
        # Bounced pre-mutation: the zone (and media) are untouched.
        assert device.zone(0).state is ZoneState.IMPLICIT_OPEN or device.zone(0).wp == wp_before
        assert device.nand.counters.erases == erases_before

    def test_bounced_reset_carries_the_command_hold(self):
        device = make_device(
            FaultPlan(reset_fail_prob=1.0), mgmt=ZoneMgmtTiming(reset_us=700.0)
        )
        device.write_batch(0, 4)
        with pytest.raises(ZoneResetFailedError) as err:
            device.reset_zone(0)
        assert err.value.latency_us == 700.0

    def test_reset_retry_succeeds_after_transient_bounce(self):
        device = make_device(FaultPlan(seed=11, reset_fail_prob=0.5))
        device.write_batch(0, 4)
        for _ in range(50):
            try:
                device.reset_zone(0)
                break
            except ZoneResetFailedError:
                assert device.zone(0).wp == 4  # bounced pre-mutation
        else:
            pytest.fail("reset never succeeded at prob=0.5")
        assert device.zone(0).state is ZoneState.EMPTY

    def test_finish_timeout_charges_the_configured_latency(self):
        device = make_device(
            FaultPlan(finish_timeout_prob=1.0, finish_timeout_us=4_000.0)
        )
        device.write(0, npages=1)
        with pytest.raises(ZoneFinishTimeoutError) as err:
            device.finish_zone(0)
        assert err.value.latency_us == 4_000.0
        assert device.zone(0).state is ZoneState.IMPLICIT_OPEN

    def test_stuck_zone_rejects_close_then_releases(self):
        plan = FaultPlan(stuck_open_zones=((0, 0),), stuck_release_after=2)
        device = make_device(plan)
        device.write(0, npages=1)
        for _ in range(2):
            with pytest.raises(ZoneStuckOpenError):
                device.close_zone(0)
        device.close_zone(0)  # the stuck window released
        assert device.zone(0).state is ZoneState.CLOSED

    def test_stuck_zone_only_applies_while_open(self):
        plan = FaultPlan(stuck_open_zones=((0, 0),), stuck_release_after=99)
        device = make_device(plan)
        device.write_batch(0, device.zone(0).capacity_pages)
        assert device.zone(0).state is ZoneState.FULL
        # FULL is not an open state: reset proceeds despite the stuck plan.
        device.reset_zone(0)
        assert device.zone(0).state is ZoneState.EMPTY


class TestOpenLruAccounting:
    """The monotonic-stamp LRU behind implicit-open eviction."""

    def test_open_order_is_lru_first(self):
        device = make_device()
        for zone in (0, 1, 2):
            device.write(zone, npages=1)
        assert device._open_order == [0, 1, 2]
        device.write(0, npages=1)  # touch 0: now the most recent
        assert device._open_order == [1, 2, 0]

    def test_eviction_closes_the_lru_zone(self):
        # Open limit below the active limit, so eviction (close) runs
        # before the active budget is ever at stake.
        geometry = ZonedGeometry(
            flash=tiny_geometry().flash,
            blocks_per_zone=2,
            max_active_zones=4,
            max_open_zones=2,
        )
        device = ZNSDevice(geometry)
        device.write(0, npages=1)
        device.write(1, npages=1)
        device.write(0, npages=1)  # 0 becomes MRU; 1 is now LRU
        device.write(2, npages=1)  # over the limit: evict LRU
        assert device.zone(1).state is ZoneState.CLOSED
        assert device.zone(0).state is ZoneState.IMPLICIT_OPEN

    def test_finish_and_reset_clear_the_stamp(self):
        device = make_device()
        device.write(0, npages=1)
        device.finish_zone(0)
        assert 0 not in device._open_order
        device.write(1, npages=1)
        device.reset_zone(1)
        assert 1 not in device._open_order


class TestTimedMgmtGate:
    def _device(self, **plan_kwargs):
        eng = Engine()
        tracer_log = _EventLog()
        plan = FaultPlan(**plan_kwargs) if plan_kwargs else None
        dev = TimedZNSDevice(
            eng,
            tiny_geometry(),
            mgmt_timing=ZoneMgmtTiming(reset_us=5_000.0, finish_us=1_000.0),
        )
        if plan is not None:
            dev.device.nand.faults = FaultInjector(plan).bind(dev.tracer)
            dev.device.faults = dev.device.nand.faults
        dev.tracer.attach(tracer_log)
        return eng, dev, tracer_log

    def test_append_queues_behind_inflight_reset(self):
        eng, dev, log = self._device()
        dev.device.write_batch(0, 4)

        def driver():
            reset = dev.submit_reset(0)
            append = dev.submit_append(0)
            yield reset
            latency = yield append
            return latency

        latency = eng.run(until=eng.process(driver()))
        # The append arrived at t=0 but had to wait out the 5 ms zone hold.
        assert latency >= 5_000.0
        (event,) = [e for e in log.of_kind("zone-mgmt") if e.action == "reset"]
        assert event.queued_behind >= 1
        assert event.latency_us >= 5_000.0

    def test_other_zones_are_not_gated(self):
        eng, dev, _ = self._device()
        dev.device.write_batch(0, 4)
        dev.device.write_batch(1, 1)

        def driver():
            reset = dev.submit_reset(0)
            latency = yield dev.submit_read(1, 0)
            yield reset
            return latency

        latency = eng.run(until=eng.process(driver()))
        assert latency < 5_000.0

    def test_submit_finish_full_span_event(self):
        eng, dev, log = self._device()
        dev.device.write(0, npages=1)
        eng.run(until=dev.submit_finish(0))
        (event,) = [e for e in log.of_kind("zone-mgmt") if e.action == "finish"]
        assert event.latency_us >= 1_000.0
        assert dev.device.zone(0).state is ZoneState.FULL

    def test_inner_device_events_deferred_to_timed_wrapper(self):
        eng, dev, log = self._device()
        dev.device.write_batch(0, 4)
        eng.run(until=dev.submit_reset(0))
        resets = [e for e in log.of_kind("zone-mgmt") if e.action == "reset"]
        assert len(resets) == 1  # the timed span, not a device duplicate

    def test_no_gate_without_mgmt_timing(self):
        eng = Engine()
        dev = TimedZNSDevice(eng, tiny_geometry())
        assert dev._mgmt_gates is None
        dev.device.write_batch(0, 4)
        eng.run(until=dev.submit_reset(0))
        assert dev.device.zone(0).state is ZoneState.EMPTY
