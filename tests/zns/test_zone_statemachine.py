"""Zone state-machine invariants under randomized command sequences.

Hypothesis drives arbitrary interleavings of the full NVMe command set
(write/append/read/open/close/finish/reset) against a device with the
management fault classes armed -- transient reset failures, finish
timeouts, a stuck-open zone. Whatever the interleaving and whatever
bounces, the device must hold its invariants: states legal, write
pointers in range, the open/active budgets respected, the open-LRU
bookkeeping consistent with zone states, and every refusal a typed
``ZnsError``. The same sequence must also replay to the identical final
state -- management faults draw from seeded streams, never wall-clock.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.flash.errors import FlashError
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice
from repro.zns.errors import ZnsError
from repro.zns.zone import ZoneState

_ZONES = 8
_OPEN_STATES = (ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN)
_ACTIVE_STATES = _OPEN_STATES + (ZoneState.CLOSED,)


def _geometry() -> ZonedGeometry:
    flash = FlashGeometry(
        page_size=512,
        pages_per_block=4,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )
    return ZonedGeometry(flash=flash, blocks_per_zone=2, max_active_zones=4,
                         max_open_zones=3)


def _plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        reset_fail_prob=0.3,
        finish_timeout_prob=0.3,
        finish_timeout_us=1_000.0,
        stuck_open_zones=((0, 1),),
        stuck_release_after=2,
    )


def _build(seed: int) -> ZNSDevice:
    return ZNSDevice(_geometry(), faults=FaultInjector(_plan(seed)))


_COMMANDS = st.tuples(
    st.sampled_from(("write", "append", "read", "open", "close", "finish", "reset")),
    st.integers(0, _ZONES - 1),
    st.integers(1, 3),
)


def _apply(device: ZNSDevice, command: tuple) -> None:
    op, zone_id, npages = command
    try:
        if op == "write":
            device.write(zone_id, npages=npages)
        elif op == "append":
            device.append(zone_id, npages=npages)
        elif op == "read":
            device.read(zone_id, npages - 1)
        elif op == "open":
            device.open_zone(zone_id)
        elif op == "close":
            device.close_zone(zone_id)
        elif op == "finish":
            device.finish_zone(zone_id)
        elif op == "reset":
            device.reset_zone(zone_id)
    except (ZnsError, FlashError):
        # Every refusal must be typed; anything else propagates and
        # fails the test.
        pass


def _check_invariants(device: ZNSDevice) -> None:
    open_zones = set()
    active = 0
    for zone in device.zones:
        assert isinstance(zone.state, ZoneState)
        assert 0 <= zone.wp <= zone.capacity_pages
        assert zone.capacity_pages <= zone.size_pages
        if zone.state in _OPEN_STATES:
            open_zones.add(zone.zone_id)
        if zone.state in _ACTIVE_STATES:
            active += 1
        if zone.state is ZoneState.FULL and zone.capacity_pages:
            assert zone.wp <= zone.capacity_pages
    geometry = device.geometry
    assert len(open_zones) <= geometry.open_limit
    assert active <= geometry.max_active_zones
    # The LRU stamp tracks exactly the implicitly/explicitly open zones
    # it is allowed to evict or account: no stale, no phantom entries.
    assert set(device._open_order) <= open_zones


def _snapshot(device: ZNSDevice) -> list[tuple]:
    return [
        (z.state.value, z.wp, z.capacity_pages, z.reset_count) for z in device.zones
    ]


class TestRandomizedCommandSequences:
    @given(
        seed=st.integers(0, 2**31 - 1),
        commands=st.lists(_COMMANDS, min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_with_mgmt_faults_armed(self, seed, commands):
        device = _build(seed)
        for command in commands:
            _apply(device, command)
            _check_invariants(device)

    @given(
        seed=st.integers(0, 2**31 - 1),
        commands=st.lists(_COMMANDS, min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_sequence_replays_to_identical_state(self, seed, commands):
        first = _build(seed)
        second = _build(seed)
        for command in commands:
            _apply(first, command)
        for command in commands:
            _apply(second, command)
        assert _snapshot(first) == _snapshot(second)
        assert first.nand.counters == second.nand.counters
