"""Tests for the ZNS device: commands, limits, translation, simple copy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice
from repro.zns.errors import (
    ActiveZoneLimitError,
    WritePointerError,
    ZoneFullError,
    ZoneStateError,
)
from repro.zns.zone import ZoneState


def make_device(**kwargs):
    return ZNSDevice(ZonedGeometry.small(), **kwargs)


class TestBasicIO:
    def test_write_advances_wp(self):
        d = make_device()
        d.write(0, npages=3)
        assert d.zone(0).wp == 3
        assert d.zone(0).state is ZoneState.IMPLICIT_OPEN

    def test_write_at_explicit_wp_offset(self):
        d = make_device()
        d.write(0, offset=0, npages=2)
        d.write(0, offset=2, npages=2)
        assert d.zone(0).wp == 4

    def test_write_at_wrong_offset_rejected(self):
        d = make_device()
        d.write(0, npages=2)
        with pytest.raises(WritePointerError):
            d.write(0, offset=5)

    def test_append_returns_assigned_offset(self):
        d = make_device()
        off1, _ = d.append(0, npages=2)
        off2, _ = d.append(0, npages=3)
        assert (off1, off2) == (0, 2)
        assert d.zone(0).wp == 5

    def test_read_below_wp(self):
        d = make_device(store_data=True)
        d.write(0, npages=1, data=b"abc")
        payload, op = d.read(0, 0)
        assert payload == b"abc"

    def test_read_at_wp_rejected(self):
        d = make_device()
        d.write(0, npages=1)
        with pytest.raises(ZoneStateError):
            d.read(0, 1)

    def test_data_list_distributes_across_pages(self):
        d = make_device(store_data=True)
        d.write(0, npages=3, data=[b"a", b"b", b"c"])
        assert d.read(0, 1)[0] == b"b"

    def test_fill_zone_goes_full(self):
        d = make_device()
        d.write(0, npages=d.geometry.pages_per_zone)
        assert d.zone(0).state is ZoneState.FULL
        with pytest.raises(ZoneStateError):
            d.write(0)

    def test_overfill_rejected(self):
        d = make_device()
        with pytest.raises(ZoneFullError):
            d.write(0, npages=d.geometry.pages_per_zone + 1)

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            make_device().write(0, npages=0)

    def test_bad_zone_id_rejected(self):
        d = make_device()
        with pytest.raises(IndexError):
            d.write(d.zone_count)


class TestZoneManagement:
    def test_explicit_open_and_close(self):
        d = make_device()
        d.open_zone(3)
        assert d.zone(3).state is ZoneState.EXPLICIT_OPEN
        d.write(3, npages=1)
        d.close_zone(3)
        assert d.zone(3).state is ZoneState.CLOSED

    def test_finish_frees_active_slot(self):
        d = make_device()
        d.write(0, npages=1)
        assert d.active_count == 1
        d.finish_zone(0)
        assert d.active_count == 0
        assert d.zone(0).state is ZoneState.FULL

    def test_reset_returns_zone_to_empty(self):
        d = make_device()
        d.write(0, npages=5)
        ops = d.reset_zone(0)
        assert d.zone(0).state is ZoneState.EMPTY
        assert d.zone(0).wp == 0
        assert len(ops) == d.geometry.blocks_per_zone

    def test_reset_then_rewrite(self):
        d = make_device(store_data=True)
        d.write(0, npages=1, data=b"old")
        d.finish_zone(0)
        d.reset_zone(0)
        d.write(0, npages=1, data=b"new")
        assert d.read(0, 0)[0] == b"new"

    def test_report_zones_snapshot(self):
        d = make_device()
        d.write(2, npages=1)
        report = d.report_zones()
        assert len(report) == d.zone_count
        assert report[2].wp == 1

    def test_zones_in_state(self):
        d = make_device()
        d.write(1, npages=1)
        assert d.zones_in_state(ZoneState.IMPLICIT_OPEN) == [1]


class TestResourceLimits:
    def test_active_limit_enforced(self):
        d = make_device()
        limit = d.geometry.max_active_zones
        for z in range(limit):
            d.write(z, npages=1)
        assert d.active_count == limit
        with pytest.raises(ActiveZoneLimitError):
            d.write(limit, npages=1)

    def test_finish_releases_active_slot_for_new_zone(self):
        d = make_device()
        limit = d.geometry.max_active_zones
        for z in range(limit):
            d.write(z, npages=1)
        d.finish_zone(0)
        d.write(limit, npages=1)  # now fits

    def test_reset_releases_active_slot(self):
        d = make_device()
        limit = d.geometry.max_active_zones
        for z in range(limit):
            d.write(z, npages=1)
        d.reset_zone(0)
        d.write(limit, npages=1)

    def test_open_limit_implicitly_closes_lru(self):
        geometry = ZonedGeometry(
            flash=FlashGeometry.small(),
            blocks_per_zone=2,
            max_active_zones=8,
            max_open_zones=2,
        )
        d = ZNSDevice(geometry)
        d.write(0, npages=1)
        d.write(1, npages=1)
        d.write(2, npages=1)  # forces zone 0 (LRU) to CLOSED
        assert d.zone(0).state is ZoneState.CLOSED
        assert d.open_count == 2
        # Writing zone 0 again reopens it (closing zone 1, now LRU).
        d.write(0, npages=1)
        assert d.zone(0).state is ZoneState.IMPLICIT_OPEN
        assert d.zone(1).state is ZoneState.CLOSED

    def test_explicit_open_respects_active_limit(self):
        d = make_device()
        for z in range(d.geometry.max_active_zones):
            d.open_zone(z)
        with pytest.raises(ActiveZoneLimitError):
            d.open_zone(d.geometry.max_active_zones)

    def test_full_zones_do_not_count_active(self):
        d = make_device()
        for z in range(d.zone_count):
            d.write(z, npages=d.geometry.pages_per_zone)
        assert d.active_count == 0


class TestTranslationAndCounters:
    def test_striped_layout_spreads_blocks(self):
        d = make_device(striped=True)
        blocks = {d.block_of_offset(0, i) for i in range(d.geometry.blocks_per_zone)}
        assert len(blocks) == d.geometry.blocks_per_zone

    def test_linear_layout_fills_block_first(self):
        d = ZNSDevice(ZonedGeometry.small(), striped=False)
        ppb = d.geometry.flash.pages_per_block
        assert d.block_of_offset(0, 0) == d.block_of_offset(0, ppb - 1)
        assert d.block_of_offset(0, ppb) != d.block_of_offset(0, 0)

    def test_round_trip_striped_read(self):
        d = make_device(store_data=True)
        payloads = [f"p{i}".encode() for i in range(10)]
        d.write(0, npages=10, data=payloads)
        for i, expected in enumerate(payloads):
            assert d.read(0, i)[0] == expected

    def test_counters_track_interface_traffic(self):
        d = make_device()
        d.write(0, npages=4)
        d.read(0, 0)
        d.finish_zone(0)
        d.reset_zone(0)
        assert d.counters.writes == 4
        assert d.counters.reads == 1
        assert d.counters.erases == d.geometry.blocks_per_zone

    def test_dram_footprint_is_per_block(self):
        d = make_device()
        assert d.dram_bytes() == d.geometry.flash.total_blocks * 4


class TestSimpleCopy:
    def test_copy_moves_pages(self):
        d = make_device(store_data=True)
        d.write(0, npages=3, data=[b"a", b"b", b"c"])
        start, ops = d.simple_copy([(0, 0), (0, 2)], dst_zone_id=1)
        assert start == 0
        assert len(ops) == 2
        assert d.read(1, 0)[0] == b"a"
        assert d.read(1, 1)[0] == b"c"

    def test_copy_does_not_use_channel(self):
        d = make_device()
        d.write(0, npages=2)
        _, ops = d.simple_copy([(0, 0)], dst_zone_id=1)
        assert all(not op.uses_channel for op in ops)

    def test_copy_counts_as_copy_not_host_write(self):
        d = make_device()
        d.write(0, npages=2)
        writes_before = d.counters.writes
        d.simple_copy([(0, 0), (0, 1)], dst_zone_id=1)
        assert d.counters.writes == writes_before
        assert d.counters.copies == 2

    def test_copy_advances_destination_wp(self):
        d = make_device()
        d.write(0, npages=2)
        d.write(1, npages=1)
        start, _ = d.simple_copy([(0, 0)], dst_zone_id=1)
        assert start == 1
        assert d.zone(1).wp == 2

    def test_copy_from_unwritten_rejected(self):
        d = make_device()
        d.write(0, npages=1)
        with pytest.raises(ZoneStateError):
            d.simple_copy([(0, 5)], dst_zone_id=1)

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            make_device().simple_copy([], dst_zone_id=1)


class TestBadBlockHandling:
    def test_reset_shrinks_capacity_when_block_dies(self):
        from repro.flash.wear import WearTracker
        from repro.flash.nand import NandArray

        zg = ZonedGeometry.small()
        wear = WearTracker(total_blocks=zg.flash.total_blocks, endurance_cycles=1)
        nand = NandArray(zg.flash, wear=wear)
        d = ZNSDevice(zg, nand=nand, spare_blocks=0)
        d.ftl.rotate_on_reset = False  # pin blocks so wear concentrates
        pages = d.geometry.pages_per_zone
        d.write(0, npages=pages)
        d.reset_zone(0)  # erase #1: fine
        d.write(0, npages=d.zone(0).capacity_pages)
        d.reset_zone(0)  # erase #2: all blocks fail and retire
        assert d.zone(0).state is ZoneState.OFFLINE

    def test_spare_blocks_preserve_capacity(self):
        from repro.flash.wear import WearTracker
        from repro.flash.nand import NandArray

        zg = ZonedGeometry.small()
        wear = WearTracker(total_blocks=zg.flash.total_blocks, endurance_cycles=1)
        nand = NandArray(zg.flash, wear=wear)
        spares = zg.blocks_per_zone  # enough to reback one zone
        d = ZNSDevice(zg, nand=nand, spare_blocks=spares)
        d.ftl.rotate_on_reset = False
        d.write(0, npages=d.geometry.pages_per_zone)
        d.reset_zone(0)
        d.write(0, npages=d.zone(0).capacity_pages)
        d.reset_zone(0)  # originals die; spares step in
        assert d.zone(0).state is ZoneState.EMPTY
        assert d.zone(0).capacity_pages == d.geometry.pages_per_zone


# -- Property test: the device never violates its own interface rules ------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["write", "append", "finish", "reset"]),
                           st.integers(0, 7)), max_size=120),
       st.integers(0, 3))
def test_device_state_machine_consistency(actions, _seed):
    from repro.zns.errors import ZnsError

    d = ZNSDevice(ZonedGeometry.small())
    for action, zone_id in actions:
        try:
            if action == "write":
                d.write(zone_id, npages=1)
            elif action == "append":
                d.append(zone_id, npages=1)
            elif action == "finish":
                d.finish_zone(zone_id)
            elif action == "reset":
                d.reset_zone(zone_id)
        except ZnsError:
            pass  # rejected commands must leave state consistent

    # Global invariants after arbitrary command sequences:
    assert d.active_count <= d.geometry.max_active_zones
    assert d.open_count <= d.geometry.open_limit
    for zone in d.report_zones():
        assert 0 <= zone.wp <= zone.capacity_pages
        if zone.state is ZoneState.FULL and zone.capacity_pages > 0:
            assert zone.wp <= zone.capacity_pages
        # The write pointer must agree with NAND state: every page below
        # wp is programmed, everything above is not.
        if zone.state is not ZoneState.OFFLINE:
            for offset in (0, zone.wp - 1):
                if 0 <= offset < zone.wp:
                    page = d._page_of(zone.zone_id, offset)
                    assert d.nand.is_programmed(page)
