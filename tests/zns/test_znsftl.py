"""Direct tests for the thin zone-granularity FTL (ZnsFTL)."""

import pytest

from repro.flash.geometry import ZonedGeometry
from repro.flash.nand import NandArray
from repro.flash.wear import WearTracker
from repro.zns.ftl import ZnsFTL


def make_ftl(spare_blocks=0, rotate=True, endurance=0):
    zoned = ZonedGeometry.small()
    wear = WearTracker(total_blocks=zoned.flash.total_blocks, endurance_cycles=endurance)
    nand = NandArray(zoned.flash, wear=wear)
    return ZnsFTL(zoned, nand, spare_blocks=spare_blocks, rotate_on_reset=rotate), nand


class TestLayout:
    def test_initial_zones_cover_all_blocks(self):
        ftl, _ = make_ftl()
        seen = set()
        for zone in range(ftl.zone_count):
            blocks = ftl.blocks_of_zone(zone)
            assert len(blocks) == ftl.geometry.blocks_per_zone
            assert not (set(blocks) & seen)
            seen |= set(blocks)

    def test_spares_reduce_zone_count(self):
        full, _ = make_ftl(spare_blocks=0)
        spared, _ = make_ftl(spare_blocks=4)
        assert spared.zone_count == full.zone_count - 2  # 2 blocks/zone

    def test_too_many_spares_rejected(self):
        zoned = ZonedGeometry.small()
        nand = NandArray(zoned.flash)
        with pytest.raises(ValueError):
            ZnsFTL(zoned, nand, spare_blocks=zoned.flash.total_blocks)

    def test_page_of_linear_layout(self):
        ftl, _ = make_ftl()
        ppb = ftl.geometry.flash.pages_per_block
        blocks = ftl.blocks_of_zone(3)
        assert ftl.page_of(3, 0) == blocks[0] * ppb
        assert ftl.page_of(3, ppb) == blocks[1] * ppb

    def test_page_of_bounds(self):
        ftl, _ = make_ftl()
        with pytest.raises(IndexError):
            ftl.page_of(0, ftl.zone_capacity_pages(0))
        with pytest.raises(IndexError):
            ftl.blocks_of_zone(ftl.zone_count)


class TestReset:
    def _fill_zone(self, ftl, nand, zone):
        for block in ftl.blocks_of_zone(zone):
            for page in nand.geometry.pages_of_block(block):
                nand.program(page)

    def test_reset_erases_all_blocks(self):
        ftl, nand = make_ftl()
        self._fill_zone(ftl, nand, 0)
        latencies, capacity = ftl.reset_zone(0)
        assert len(latencies) == ftl.geometry.blocks_per_zone
        assert capacity == ftl.geometry.pages_per_zone
        for block in ftl.blocks_of_zone(0):
            assert nand.is_block_erased(block)

    def test_rotation_prefers_least_worn_blocks(self):
        ftl, nand = make_ftl(rotate=True)
        original = set(ftl.blocks_of_zone(0))
        # Wear the original blocks heavily relative to the pool.
        for block in original:
            for _ in range(5):
                nand.erase(block)
        self._fill_zone(ftl, nand, 0)
        ftl.reset_zone(0)
        ftl.reset_zone(0)  # second reset draws from the rotated pool
        rebacked = set(ftl.blocks_of_zone(0))
        wear = nand.wear.erase_counts
        # The zone's backing blocks are now among the least-worn available.
        assert max(int(wear[b]) for b in rebacked) <= 7

    def test_no_rotation_keeps_blocks(self):
        ftl, nand = make_ftl(rotate=False)
        before = ftl.blocks_of_zone(0)
        self._fill_zone(ftl, nand, 0)
        ftl.reset_zone(0)
        assert ftl.blocks_of_zone(0) == before

    def test_failed_block_replaced_by_spare(self):
        ftl, nand = make_ftl(spare_blocks=2, rotate=False, endurance=1)
        self._fill_zone(ftl, nand, 0)
        ftl.reset_zone(0)  # erase 1 ok
        self._fill_zone(ftl, nand, 0)
        _, capacity = ftl.reset_zone(0)  # erase 2 retires both blocks
        assert capacity == ftl.geometry.pages_per_zone  # spares stepped in
        for block in ftl.blocks_of_zone(0):
            assert not nand.wear.is_bad(block)

    def test_capacity_shrinks_without_spares(self):
        ftl, nand = make_ftl(spare_blocks=0, rotate=False, endurance=1)
        self._fill_zone(ftl, nand, 0)
        ftl.reset_zone(0)
        self._fill_zone(ftl, nand, 0)
        _, capacity = ftl.reset_zone(0)
        assert capacity == 0  # every backing block retired


class TestDram:
    def test_dram_per_block(self):
        ftl, _ = make_ftl()
        mapped_blocks = ftl.zone_count * ftl.geometry.blocks_per_zone
        assert ftl.dram_bytes() == mapped_blocks * 4
        assert ftl.dram_bytes(bytes_per_entry=8) == mapped_blocks * 8
