"""Property tests: batched ZNS commands are state-identical to scalar ones.

``write_batch``/``append_batch``/``simple_copy_batch`` run the same zone
state machine and publish the same command-level counter totals as their
scalar twins; only the flash work is vectorized. Hypothesis drives both
devices through identical command scripts (including commands that must
fail) and compares zone states, write pointers, flash write offsets, and
both counter layers.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice
from repro.zns.errors import ZnsError


def tiny_geometry() -> ZonedGeometry:
    flash = FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )
    return ZonedGeometry(flash=flash, blocks_per_zone=2, max_active_zones=4)


ZONES = tiny_geometry().zone_count
ZONE_PAGES = tiny_geometry().pages_per_zone


def device_state(device: ZNSDevice) -> dict:
    return {
        "zones": [(z.state.value, z.wp, z.capacity_pages) for z in device.zones],
        "write_offsets": [
            device.nand.write_offset(b)
            for b in range(device.geometry.flash.total_blocks)
        ],
        "erase_counts": device.nand.wear.erase_counts.tolist(),
        "device_counters": dataclasses.asdict(device.counters),
        "nand_counters": dataclasses.asdict(device.nand.counters),
        "open_order": list(device._open_order),
    }


commands = st.lists(
    st.one_of(
        st.tuples(
            st.just("append"),
            st.integers(0, ZONES - 1),
            st.integers(1, ZONE_PAGES),
        ),
        st.tuples(
            st.just("write"),
            st.integers(0, ZONES - 1),
            st.integers(1, ZONE_PAGES),
        ),
        st.tuples(
            st.just("copy"),
            st.integers(0, ZONES - 1),
            st.integers(0, ZONES - 1),
            st.integers(1, 6),
        ),
        st.tuples(st.just("reset"), st.integers(0, ZONES - 1)),
        st.tuples(st.just("finish"), st.integers(0, ZONES - 1)),
    ),
    min_size=1,
    max_size=40,
)


def apply_command(device: ZNSDevice, command: tuple, batched: bool) -> tuple:
    """Run one command; returns (outcome, payload) for cross-checking."""
    kind = command[0]
    try:
        if kind == "append":
            _, zone_id, n = command
            if batched:
                return ("ok", device.append_batch(zone_id, n))
            assigned, _ = device.append(zone_id, n)
            return ("ok", assigned)
        if kind == "write":
            _, zone_id, n = command
            if batched:
                device.write_batch(zone_id, n)
            else:
                device.write(zone_id, npages=n)
            return ("ok", n)
        if kind == "copy":
            _, src_zone, dst_zone, n = command
            # Sources are the first n written pages of the source zone;
            # short zones produce the readability failures we also want
            # to see handled identically.
            sources = [(src_zone, offset) for offset in range(n)]
            if batched:
                return ("ok", device.simple_copy_batch(sources, dst_zone))
            start, _ = device.simple_copy(sources, dst_zone)
            return ("ok", start)
        if kind == "reset":
            device.reset_zone(command[1])
            return ("ok", None)
        if kind == "finish":
            device.finish_zone(command[1])
            return ("ok", None)
        raise AssertionError(f"unknown command {command}")
    except (ZnsError, ValueError, IndexError) as exc:
        return ("error", type(exc).__name__)


class TestZnsBatchParity:
    @settings(max_examples=40, deadline=None)
    @given(script=commands)
    def test_batched_equals_scalar(self, script):
        scalar = ZNSDevice(tiny_geometry(), striped=True)
        batched = ZNSDevice(tiny_geometry(), striped=True)
        for command in script:
            scalar_outcome = apply_command(scalar, command, batched=False)
            batched_outcome = apply_command(batched, command, batched=True)
            assert scalar_outcome == batched_outcome, command
        assert device_state(scalar) == device_state(batched)

    @settings(max_examples=15, deadline=None)
    @given(script=commands)
    def test_parity_holds_unstriped(self, script):
        scalar = ZNSDevice(tiny_geometry(), striped=False)
        batched = ZNSDevice(tiny_geometry(), striped=False)
        for command in script:
            assert apply_command(scalar, command, batched=False) == apply_command(
                batched, command, batched=True
            )
        assert device_state(scalar) == device_state(batched)

    def test_copy_accounting_matches_scalar(self):
        """simple_copy books sense+program at flash level, copy at command level."""
        scalar = ZNSDevice(tiny_geometry())
        batched = ZNSDevice(tiny_geometry())
        for device, is_batch in ((scalar, False), (batched, True)):
            if is_batch:
                device.write_batch(0, 6)
                device.simple_copy_batch([(0, 0), (0, 3), (0, 5)], 1)
            else:
                device.write(0, npages=6)
                device.simple_copy([(0, 0), (0, 3), (0, 5)], 1)
        assert device_state(scalar) == device_state(batched)
        assert scalar.counters.copies == 3
        assert scalar.nand.counters.copies == 0  # programs, not copy events
