"""ZNS devices under injected faults: degradation, offlining, atomicity.

The ZNS half of the recovery story (paper §2.1): where a conventional
FTL hides media failure behind remapping, the ZNS device *surfaces* it
-- a failed append degrades the zone to READ_ONLY, grown bad blocks
shrink the zone at its next reset, and scheduled media death turns
zones OFFLINE. Batched commands keep their atomicity contract: a
failed batch leaves zone and flash state untouched.
"""

import dataclasses

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.flash.errors import ProgramFaultError
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice
from repro.zns.errors import ZoneReadOnlyError, ZoneStateError
from repro.zns.zone import ZoneOfflineError, ZoneState


def tiny_geometry() -> ZonedGeometry:
    flash = FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )
    return ZonedGeometry(flash=flash, blocks_per_zone=2, max_active_zones=4)


def make_device(plan: FaultPlan | None = None, **kwargs) -> ZNSDevice:
    faults = FaultInjector(plan) if plan is not None else None
    return ZNSDevice(tiny_geometry(), faults=faults, **kwargs)


def arm_after_the_fact(device: ZNSDevice, plan: FaultPlan) -> None:
    """Attach an injector to a device that already has clean data."""
    device.nand.faults = FaultInjector(plan).bind(device.tracer)


def zone_and_flash_state(device: ZNSDevice) -> dict:
    return {
        "zones": [(z.state.value, z.wp, z.capacity_pages) for z in device.zones],
        "write_offsets": device.nand.write_offsets.tolist(),
        "nand_counters": dataclasses.asdict(device.nand.counters),
        "open_order": list(device._open_order),
    }


class TestProgramFaultDegradation:
    def test_failed_write_degrades_zone_read_only(self):
        device = make_device(FaultPlan(program_fail_prob=1.0))
        with pytest.raises(ProgramFaultError):
            device.write(0, npages=2)
        assert device.zone(0).state is ZoneState.READ_ONLY
        # Nothing durable landed, so the write pointer stayed put.
        assert device.zone(0).wp == 0
        with pytest.raises(ZoneReadOnlyError):
            device.write(0, npages=1)

    def test_durable_prefix_stays_readable(self):
        device = make_device(store_data=True)
        device.write(0, npages=3, data=b"x")
        arm_after_the_fact(device, FaultPlan(program_fail_prob=1.0))
        with pytest.raises(ProgramFaultError):
            device.write(0, npages=2)
        zone = device.zone(0)
        assert zone.state is ZoneState.READ_ONLY
        assert zone.wp == 3
        for offset in range(3):
            payload, _ = device.read(0, offset)
            assert payload == b"x"

    def test_degraded_zone_leaves_open_budget(self):
        device = make_device(FaultPlan(program_fail_prob=1.0))
        with pytest.raises(ProgramFaultError):
            device.append(0, npages=1)
        assert 0 not in device._open_order
        assert device.open_count == 0


class TestScheduledZoneOffline:
    def test_due_zone_goes_offline_before_next_command(self):
        device = make_device(FaultPlan(zone_offline_at=((0, 2),)))
        device.write(0, npages=1)  # any command polls the schedule
        assert device.zone(2).state is ZoneState.OFFLINE
        with pytest.raises((ZoneStateError, ZoneOfflineError)):
            device.write(2, npages=1)
        with pytest.raises(ZoneStateError):
            device.reset_zone(2)

    def test_offline_zone_closes_open_slot(self):
        device = make_device(FaultPlan(zone_offline_at=((2, 0),)))
        device.write(0, npages=1)  # opens zone 0 (ops 0 -> 1: not yet due)
        assert device.zone(0).state is ZoneState.IMPLICIT_OPEN
        device.write(1, npages=1)  # ops reach 2; next poll kills zone 0
        device.write(1, npages=1)
        assert device.zone(0).state is ZoneState.OFFLINE
        assert 0 not in device._open_order


class TestGrownBadBlockShrinksZone:
    def test_reset_drops_failed_block_without_spares(self):
        device = make_device(FaultPlan(grown_bad_blocks=((1, 0),)))
        full_capacity = device.zone(0).capacity_pages
        device.write(0, npages=2)  # passes the scheduled op index
        device.reset_zone(0)
        # Block 0 failed its erase and was dropped; no spare to refill.
        assert device.zone(0).capacity_pages < full_capacity
        assert device.nand.wear.is_bad(0)

    def test_spare_block_preserves_capacity(self):
        device = make_device(
            FaultPlan(grown_bad_blocks=((1, 0),)), spare_blocks=2
        )
        full_capacity = device.zone(0).capacity_pages
        device.write(0, npages=2)
        device.reset_zone(0)
        assert device.zone(0).capacity_pages == full_capacity
        assert device.nand.wear.is_bad(0)
        assert 0 not in device.ftl.blocks_of_zone(0)


class TestBatchAtomicity:
    """Failed batch commands leave zone and NAND state untouched."""

    def test_failed_write_batch_is_a_no_op(self):
        device = make_device(FaultPlan(program_fail_prob=1.0))
        before = zone_and_flash_state(device)
        with pytest.raises(ProgramFaultError):
            device.write_batch(0, 4)
        assert zone_and_flash_state(device) == before

    def test_failed_append_batch_is_a_no_op(self):
        device = make_device(FaultPlan(program_fail_prob=1.0))
        before = zone_and_flash_state(device)
        with pytest.raises(ProgramFaultError):
            device.append_batch(0, 4)
        assert zone_and_flash_state(device) == before

    def test_failed_batch_keeps_explicit_open_state(self):
        device = make_device(FaultPlan(program_fail_prob=1.0))
        device.open_zone(0)
        before = zone_and_flash_state(device)
        with pytest.raises(ProgramFaultError):
            device.write_batch(0, 2)
        # The zone was already explicitly open; the failed batch must
        # not close it (only *this command's* implicit open unwinds).
        assert zone_and_flash_state(device) == before
        assert device.zone(0).state is ZoneState.EXPLICIT_OPEN

    def test_failed_simple_copy_batch_is_a_no_op(self):
        device = make_device()
        device.write(0, npages=4)
        arm_after_the_fact(device, FaultPlan(program_fail_prob=1.0))
        before = zone_and_flash_state(device)
        with pytest.raises(ProgramFaultError):
            device.simple_copy_batch([(0, 0), (0, 1)], 1)
        assert zone_and_flash_state(device) == before

    def test_batch_retry_succeeds_after_transient_fault(self):
        device = make_device(FaultPlan(seed=5, program_fail_prob=0.4))
        for _ in range(50):
            try:
                device.write_batch(0, 4)
                break
            except ProgramFaultError:
                assert device.zone(0).wp == 0
        else:
            pytest.fail("write_batch never succeeded at prob=0.4")
        assert device.zone(0).wp == 4
