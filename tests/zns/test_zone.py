"""Tests for the zone state machine."""

import pytest

from repro.zns.errors import (
    ZoneFullError,
    ZoneOfflineError,
    ZoneReadOnlyError,
    ZoneStateError,
)
from repro.zns.zone import Zone, ZoneState


def make_zone(size=64, capacity=-1):
    return Zone(zone_id=0, size_pages=size, capacity_pages=capacity)


class TestConstruction:
    def test_starts_empty(self):
        z = make_zone()
        assert z.state is ZoneState.EMPTY
        assert z.wp == 0
        assert z.remaining == 64

    def test_capacity_defaults_to_size(self):
        assert make_zone().capacity_pages == 64

    def test_capacity_above_size_rejected(self):
        with pytest.raises(ValueError):
            make_zone(size=10, capacity=20)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Zone(zone_id=0, size_pages=0)


class TestStateProperties:
    def test_open_states(self):
        assert ZoneState.IMPLICIT_OPEN.is_open
        assert ZoneState.EXPLICIT_OPEN.is_open
        assert not ZoneState.CLOSED.is_open

    def test_active_states(self):
        assert ZoneState.IMPLICIT_OPEN.is_active
        assert ZoneState.EXPLICIT_OPEN.is_active
        assert ZoneState.CLOSED.is_active
        assert not ZoneState.EMPTY.is_active
        assert not ZoneState.FULL.is_active


class TestTransitions:
    def test_open_close_reopen(self):
        z = make_zone()
        z.transition_open(explicit=True)
        assert z.state is ZoneState.EXPLICIT_OPEN
        z.advance(5)
        z.transition_closed()
        assert z.state is ZoneState.CLOSED
        z.transition_open(explicit=False)
        assert z.state is ZoneState.IMPLICIT_OPEN

    def test_close_empty_open_zone_returns_to_empty(self):
        z = make_zone()
        z.transition_open(explicit=True)
        z.transition_closed()
        assert z.state is ZoneState.EMPTY

    def test_advance_to_capacity_goes_full(self):
        z = make_zone(size=4)
        z.transition_open(explicit=False)
        z.advance(4)
        assert z.state is ZoneState.FULL
        assert z.remaining == 0

    def test_finish_marks_full_early(self):
        z = make_zone()
        z.transition_open(explicit=False)
        z.advance(3)
        z.transition_full()
        assert z.state is ZoneState.FULL
        assert z.wp == 3

    def test_reset_rewinds(self):
        z = make_zone(size=4)
        z.transition_open(explicit=False)
        z.advance(4)
        z.transition_empty()
        assert z.state is ZoneState.EMPTY
        assert z.wp == 0
        assert z.reset_count == 1

    def test_reset_can_shrink_capacity(self):
        z = make_zone(size=64)
        z.transition_empty(new_capacity=32)
        assert z.capacity_pages == 32
        assert z.remaining == 32

    def test_reset_to_zero_capacity_goes_offline(self):
        z = make_zone()
        z.transition_empty(new_capacity=0)
        assert z.state is ZoneState.OFFLINE

    def test_offline_rejects_everything(self):
        z = make_zone()
        z.transition_empty(new_capacity=0)
        with pytest.raises(ZoneOfflineError):
            z.check_writable(1)
        with pytest.raises(ZoneOfflineError):
            z.check_readable(0)
        with pytest.raises(ZoneOfflineError):
            z.transition_empty()

    def test_open_full_zone_rejected(self):
        z = make_zone(size=2)
        z.transition_open(explicit=False)
        z.advance(2)
        with pytest.raises(ZoneStateError):
            z.transition_open(explicit=False)

    def test_close_non_open_rejected(self):
        with pytest.raises(ZoneStateError):
            make_zone().transition_closed()


class TestGuards:
    def test_write_beyond_capacity_rejected(self):
        z = make_zone(size=4)
        z.transition_open(explicit=False)
        z.advance(3)
        with pytest.raises(ZoneFullError):
            z.check_writable(2)

    def test_write_to_full_rejected(self):
        z = make_zone(size=2)
        z.transition_open(explicit=False)
        z.advance(2)
        with pytest.raises(ZoneStateError):
            z.check_writable(1)

    def test_read_only_rejects_writes(self):
        z = make_zone()
        z.state = ZoneState.READ_ONLY
        with pytest.raises(ZoneReadOnlyError):
            z.check_writable(1)
        z.wp = 5
        z.check_readable(2)  # reads still fine

    def test_read_beyond_wp_rejected(self):
        z = make_zone()
        z.transition_open(explicit=False)
        z.advance(3)
        z.check_readable(2)
        with pytest.raises(ZoneStateError):
            z.check_readable(3)

    def test_read_negative_offset_rejected(self):
        z = make_zone()
        z.advance(1)
        with pytest.raises(ZoneStateError):
            z.check_readable(-1)
