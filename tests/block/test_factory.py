"""Tests for DeviceSpec + build_stack: round-trips, hashing, validation.

The spec is the cache-key and process-boundary currency of device
construction, so the contract under test is exactness: serialization
round-trips to an equal spec, the content hash is stable across field
ordering and across releases (pinned literals), and every kind builds
the documented top-level type.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.dmzoned import ZonedBlockDevice
from repro.block.factory import (
    FAULT_CAPABLE_KINDS,
    KINDS,
    TIMED_KINDS,
    DeviceSpec,
    build_stack,
)
from repro.faults import FaultInjector, FaultPlan
from repro.ftl.device import ConventionalSSD, TimedConventionalSSD
from repro.ftl.dftl import DemandPagedFTL
from repro.ftl.ftl import ConventionalFTL
from repro.hostio.timed import TimedZonedBlockDevice
from repro.sim.engine import Engine
from repro.zns.device import TimedZNSDevice, ZNSDevice

_PLAN = FaultPlan(seed=7, program_fail_prob=0.002, grown_bad_blocks=((1000, 3),))


def _spec_for(kind: str) -> DeviceSpec:
    """A small, valid spec of each kind (zoned fields only where legal)."""
    if kind in ("zns", "zns-timed", "dmzoned", "dmzoned-timed"):
        return DeviceSpec(
            kind=kind, geometry="small", blocks_per_zone=2, max_active_zones=14
        )
    return DeviceSpec(kind=kind, geometry="small", ftl={"op_ratio": 0.11})


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            DeviceSpec(kind="quantum-ssd")

    def test_unknown_geometry_rejected(self):
        with pytest.raises(ValueError, match="geometry preset"):
            DeviceSpec(kind="zns", geometry="huge")

    def test_zoned_fields_rejected_on_conventional(self):
        with pytest.raises(ValueError, match="zoned kinds"):
            DeviceSpec(kind="conventional-ftl", blocks_per_zone=2)
        with pytest.raises(ValueError, match="spare_blocks"):
            DeviceSpec(kind="conventional-ftl", spare_blocks=1)

    def test_ftl_config_rejected_on_zns(self):
        with pytest.raises(ValueError, match="ftl config"):
            DeviceSpec(kind="zns", ftl={"op_ratio": 0.1})

    def test_zoned_block_config_rejected_off_dmzoned(self):
        with pytest.raises(ValueError, match="zoned_block"):
            DeviceSpec(kind="conventional-ftl", zoned_block={"op_ratio": 0.1})

    def test_negative_fault_scale_rejected(self):
        with pytest.raises(ValueError, match="fault_scale"):
            DeviceSpec(kind="zns", fault_scale=-1.0)

    def test_fault_plan_rejected_on_incapable_kind(self):
        assert "conventional-ssd" not in FAULT_CAPABLE_KINDS
        with pytest.raises(ValueError, match="fault injection"):
            DeviceSpec(kind="conventional-ssd", fault_plan=_PLAN)

    def test_engine_required_for_timed_kinds(self):
        for kind in TIMED_KINDS:
            with pytest.raises(ValueError, match="requires a simulation engine"):
                build_stack(_spec_for(kind))

    def test_engine_rejected_on_untimed_kinds(self):
        with pytest.raises(ValueError, match="does not take an engine"):
            build_stack(_spec_for("zns"), engine=Engine())

    def test_build_stack_wants_a_spec(self):
        with pytest.raises(TypeError, match="DeviceSpec"):
            build_stack({"kind": "zns"})


class TestBuildStack:
    TOP_TYPES = {
        "conventional-ftl": ConventionalFTL,
        "conventional-ssd": ConventionalSSD,
        "conventional-timed": TimedConventionalSSD,
        "dftl": DemandPagedFTL,
        "zns": ZNSDevice,
        "zns-timed": TimedZNSDevice,
        "dmzoned": ZonedBlockDevice,
        "dmzoned-timed": TimedZonedBlockDevice,
    }

    def test_every_kind_builds_its_documented_type(self):
        assert set(self.TOP_TYPES) == set(KINDS)
        for kind, top in self.TOP_TYPES.items():
            spec = _spec_for(kind)
            stack = build_stack(spec, engine=Engine() if spec.timed else None)
            assert isinstance(stack, top), kind

    def test_dmzoned_wraps_a_zns_device(self):
        layer = build_stack(_spec_for("dmzoned"))
        assert isinstance(layer.device, ZNSDevice)

    def test_geometry_overrides_reach_the_stack(self):
        spec = DeviceSpec(
            kind="conventional-ftl", geometry="small", flash={"blocks_per_plane": 8}
        )
        assert build_stack(spec).geometry.blocks_per_plane == 8

    def test_ftl_config_reaches_the_stack(self):
        ftl = build_stack(
            DeviceSpec(kind="conventional-ftl", geometry="small", ftl={"op_ratio": 0.18})
        )
        assert ftl.config.op_ratio == 0.18

    def test_fault_plan_arms_an_injector(self):
        spec = _spec_for("conventional-ftl").with_faults(_PLAN, 2.0)
        ftl = build_stack(spec)
        assert isinstance(ftl.nand.faults, FaultInjector)
        # The injector carries the *scaled* plan.
        assert ftl.nand.faults.plan.program_fail_prob == pytest.approx(
            2.0 * _PLAN.program_fail_prob
        )

    def test_fault_scale_zero_is_the_clean_reference_arm(self):
        spec = _spec_for("conventional-ftl").with_faults(_PLAN, 0.0)
        assert build_stack(spec).nand.faults is None

    def test_with_faults_none_disarms(self):
        spec = _spec_for("zns").with_faults(_PLAN).with_faults(None)
        assert spec.fault_plan is None
        assert build_stack(spec).nand.faults is None


class TestSerialization:
    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_round_trip_every_kind(self, kind):
        spec = _spec_for(kind)
        assert DeviceSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json_with_fault_plan(self):
        spec = DeviceSpec(
            kind="zns",
            geometry="small",
            flash={"blocks_per_plane": 8},
            blocks_per_zone=2,
            max_active_zones=14,
            fault_plan=_PLAN,
            fault_scale=2.0,
        )
        wire = json.loads(json.dumps(spec.to_dict()))
        back = DeviceSpec.from_dict(wire)
        assert back == spec
        assert back.fault_plan == _PLAN
        assert back.spec_hash() == spec.spec_hash()

    def test_unknown_schema_version_rejected(self):
        payload = _spec_for("zns").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            DeviceSpec.from_dict(payload)

    @given(op_ratio=st.floats(0.01, 0.5), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_is_exact_for_any_params(self, op_ratio, seed):
        spec = DeviceSpec(
            kind="conventional-ftl",
            geometry="small",
            ftl={"op_ratio": op_ratio},
            fault_plan=FaultPlan(seed=seed, read_error_prob=0.01),
        )
        back = DeviceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()


class TestSpecHash:
    def test_hash_ignores_kwarg_dict_order(self):
        a = DeviceSpec(kind="dftl", ftl={"op_ratio": 0.11, "gc_policy": "greedy"})
        b = DeviceSpec(kind="dftl", ftl={"gc_policy": "greedy", "op_ratio": 0.11})
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_content(self):
        spec = _spec_for("zns")
        assert spec.spec_hash() != spec.derived(max_active_zones=8).spec_hash()
        assert spec.spec_hash() != spec.with_faults(_PLAN).spec_hash()

    def test_hash_is_stable_across_releases(self):
        # Pinned literals: a change here means the spec schema changed and
        # SPEC_VERSION must be bumped (old hashes key cached artifacts).
        spec = DeviceSpec(
            kind="zns",
            geometry="small",
            flash={"blocks_per_plane": 8},
            blocks_per_zone=2,
            max_active_zones=14,
            fault_plan=_PLAN,
            fault_scale=2.0,
        )
        assert spec.spec_hash() == (
            "7fed8ec5d1f980d34b0eda322f8f9856e4d5502d13e01aaa16ec7e46ff68ce21"
        )
        conv = DeviceSpec(
            kind="conventional-ftl",
            geometry="bench",
            ftl={"op_ratio": 0.18, "gc_policy": "greedy"},
        )
        assert conv.spec_hash() == (
            "c3d4105663e954959600c6759a7e504422f2c8b49bd9d0f5bab5ac6f63d06d5d"
        )

    def test_specs_are_hashable(self):
        assert len({_spec_for("zns"), _spec_for("zns"), _spec_for("dmzoned")}) == 2

    def test_legacy_spec_shim_is_gone(self):
        # Deprecated in PR 6 for one release, removed in PR 7.
        import repro.block.factory as factory

        assert not hasattr(factory, "legacy_spec")


class TestMappingAndWearLevelFields:
    def test_cmt_bytes_reaches_the_stack(self):
        spec = DeviceSpec(
            kind="dftl", geometry="small", ftl={"op_ratio": 0.11},
            cmt_bytes=2 * 4096,
        )
        device = build_stack(spec)
        assert device.store.capacity_pages == 2

    def test_wl_policy_reaches_the_stack(self):
        for kind in ("conventional-ftl", "dftl"):
            spec = DeviceSpec(
                kind=kind, geometry="small", ftl={"op_ratio": 0.11},
                wl_policy="static",
            )
            device = build_stack(spec)
            ftl = device if isinstance(device, ConventionalFTL) else device.ftl
            assert ftl.wearlevel.name == "static"

    def test_cmt_bytes_rejected_off_dftl(self):
        with pytest.raises(ValueError, match="cmt_bytes"):
            DeviceSpec(kind="conventional-ftl", cmt_bytes=4096)
        with pytest.raises(ValueError, match="cmt_bytes"):
            DeviceSpec(kind="dftl", cmt_bytes=0)

    def test_wl_policy_validated(self):
        with pytest.raises(ValueError, match="wl_policy"):
            DeviceSpec(kind="zns", blocks_per_zone=2, wl_policy="dynamic")
        with pytest.raises(ValueError, match="wl_policy"):
            DeviceSpec(kind="conventional-ftl", wl_policy="bogus")

    def test_round_trip_with_new_fields(self):
        spec = DeviceSpec(
            kind="dftl", geometry="small", ftl={"op_ratio": 0.11},
            cmt_bytes=8192, wl_policy="none",
        )
        back = DeviceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()

    def test_none_defaults_leave_wire_format_and_hash_unchanged(self):
        # Spec-hash stability: specs that don't opt in must serialize
        # exactly as before these fields existed, so cached results and
        # the pinned release hashes stay valid.
        spec = _spec_for("dftl")
        payload = spec.to_dict()
        assert "cmt_bytes" not in payload
        assert "wl_policy" not in payload
        assert spec.spec_hash() != spec.derived(cmt_bytes=4096).spec_hash()
        assert spec.spec_hash() != spec.derived(wl_policy="none").spec_hash()
