"""Tests for the host block-on-ZNS translation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.dmzoned import (
    TranslationError,
    ZonedBlockConfig,
    ZonedBlockDevice,
)
from repro.block.interface import BlockDevice
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice


def make_layer(**config_kwargs):
    zoned = ZonedGeometry.small()
    return ZonedBlockDevice(ZNSDevice(zoned), ZonedBlockConfig(**config_kwargs))


class TestConfig:
    def test_negative_op_rejected(self):
        with pytest.raises(ValueError):
            ZonedBlockConfig(op_ratio=-0.1)

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError):
            ZonedBlockConfig(gc_low_zones=3, gc_high_zones=3)

    def test_tiny_device_rejected(self):
        zoned = ZonedGeometry(
            flash=FlashGeometry(blocks_per_plane=2, planes_per_channel=1, channels=2),
            blocks_per_zone=2,
        )
        with pytest.raises(ValueError):
            ZonedBlockDevice(ZNSDevice(zoned))

    def test_exported_capacity_below_device(self):
        layer = make_layer(op_ratio=0.07)
        device_pages = layer.device.zone_count * layer.device.geometry.pages_per_zone
        assert layer.logical_pages < device_pages


class TestBlockInterface:
    def test_satisfies_protocol(self):
        assert isinstance(make_layer(), BlockDevice)

    def test_round_trip_payload(self):
        zoned = ZonedGeometry.small()
        layer = ZonedBlockDevice(ZNSDevice(zoned, store_data=True))
        layer.write_block(7, b"payload")
        assert layer.read_block(7) == b"payload"

    def test_overwrite_returns_new_data(self):
        zoned = ZonedGeometry.small()
        layer = ZonedBlockDevice(ZNSDevice(zoned, store_data=True))
        layer.write_block(7, b"old")
        layer.write_block(7, b"new")
        assert layer.read_block(7) == b"new"

    def test_read_unmapped_rejected(self):
        with pytest.raises(TranslationError):
            make_layer().read_block(0)

    def test_trim_unmaps(self):
        layer = make_layer()
        layer.write_block(3)
        layer.trim_block(3)
        with pytest.raises(TranslationError):
            layer.read_block(3)

    def test_out_of_range_rejected(self):
        layer = make_layer()
        with pytest.raises(IndexError):
            layer.write_block(layer.num_blocks)


class TestReclaim:
    def _fill_and_overwrite(self, layer, multiple=2, seed=0):
        n = layer.logical_pages
        rng = np.random.default_rng(seed)
        for lba in range(n):
            layer.write_block(lba)
        for _ in range(multiple * n):
            layer.write_block(int(rng.integers(0, n)))

    def test_sustains_random_overwrites(self):
        layer = make_layer(op_ratio=0.11)
        self._fill_and_overwrite(layer)
        assert layer.stats.gc_runs > 0
        layer.check_invariants()

    def test_all_data_readable_after_gc(self):
        layer = make_layer(op_ratio=0.11)
        self._fill_and_overwrite(layer)
        for lba in range(layer.logical_pages):
            layer.read(lba)

    def test_host_wa_comparable_to_ftl(self):
        """Same spare ratio, same algorithm family -> similar WA."""
        layer = make_layer(op_ratio=0.25)
        self._fill_and_overwrite(layer, multiple=3)
        assert 1.5 < layer.stats.host_write_amplification < 5.0

    def test_simple_copy_produces_no_pcie_traffic(self):
        layer = make_layer(op_ratio=0.11, use_simple_copy=True)
        self._fill_and_overwrite(layer)
        assert layer.stats.gc_pages_copied > 0
        assert layer.stats.pcie_copy_pages == 0

    def test_host_copy_crosses_pcie(self):
        layer = make_layer(op_ratio=0.11, use_simple_copy=False)
        self._fill_and_overwrite(layer)
        assert layer.stats.pcie_copy_pages == layer.stats.gc_pages_copied

    def test_wa_identical_for_copy_paths(self):
        """Simple copy changes *where* bytes move, not how many."""
        a = make_layer(op_ratio=0.11, use_simple_copy=True)
        b = make_layer(op_ratio=0.11, use_simple_copy=False)
        self._fill_and_overwrite(a, seed=42)
        self._fill_and_overwrite(b, seed=42)
        assert a.stats.gc_pages_copied == b.stats.gc_pages_copied

    def test_incremental_reclaim_equivalent_to_full(self):
        layer = make_layer(op_ratio=0.11)
        n = layer.logical_pages
        rng = np.random.default_rng(1)
        for lba in range(n):
            layer.write_block(lba)
        for _ in range(n):
            layer.write_block(int(rng.integers(0, n)))
        free_before = layer.free_zone_count
        copied_before = layer.stats.gc_pages_copied
        steps = 1
        layer.reclaim_step(max_copies=4)
        while layer.reclaim_in_progress:
            layer.reclaim_step(max_copies=4)
            steps += 1
        # The victim was drained and reset; a GC destination zone may have
        # been opened along the way, so the net gain is 0 or 1 zones.
        assert layer.free_zone_count >= free_before
        assert layer.stats.zones_reset >= 1
        assert steps > 1  # it genuinely took multiple quanta
        assert layer.stats.gc_pages_copied > copied_before
        layer.check_invariants()

    def test_host_dram_footprint(self):
        layer = make_layer()
        assert layer.host_dram_bytes() == layer.logical_pages * 4


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 100),
    trim_fraction=st.floats(0.0, 0.4),
)
def test_translation_invariants_random_workload(seed, trim_fraction):
    layer = make_layer(op_ratio=0.15)
    n = layer.logical_pages
    rng = np.random.default_rng(seed)
    for _ in range(n + n // 2):
        lba = int(rng.integers(0, n))
        if rng.random() < trim_fraction:
            layer.trim(lba)
        else:
            layer.write(lba)
    layer.check_invariants()
