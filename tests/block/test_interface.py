"""Protocol-conformance tests for BlockDevice and ZonedDevice."""

from repro.block.dmzoned import ZonedBlockDevice
from repro.block.interface import BlockDevice, ZonedDevice
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import ZonedGeometry
from repro.zns.device import ZNSDevice


class TestZonedDeviceProtocol:
    def test_zns_device_conforms(self):
        device = ZNSDevice(ZonedGeometry.small())
        assert isinstance(device, ZonedDevice)

    def test_ramdisk_is_block_not_zoned(self):
        disk = RamDisk(num_blocks=8)
        assert isinstance(disk, BlockDevice)
        assert not isinstance(disk, ZonedDevice)

    def test_translation_layer_is_block_not_zoned(self):
        layer = ZonedBlockDevice(ZNSDevice(ZonedGeometry.small()))
        assert isinstance(layer, BlockDevice)
        assert not isinstance(layer, ZonedDevice)

    def test_zns_device_is_not_block_device(self):
        # The whole point of the paper's interface split: a zoned device
        # does not offer random block writes.
        device = ZNSDevice(ZonedGeometry.small())
        assert not isinstance(device, BlockDevice)

    def test_protocol_surface_is_usable_generically(self):
        def zone_utilization(device: ZonedDevice) -> float:
            written = sum(zone.wp for zone in device.report_zones())
            capacity = device.zone_count * device.geometry.pages_per_zone
            return written / capacity

        device = ZNSDevice(ZonedGeometry.small())
        device.write(0, npages=3)
        assert 0.0 < zone_utilization(device) < 1.0
