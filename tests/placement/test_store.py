"""Tests for hint policies and the zoned object store."""

import pytest

from repro.flash.geometry import ZonedGeometry
from repro.placement import HINT_POLICIES, StoreFullError, ZonedObjectStore
from repro.placement.hints import by_batch, by_lifetime_oracle, by_owner, no_hint
from repro.workloads.lifetime import LifetimeClass, ObjectEvent, ObjectLifetimeWorkload
from repro.zns.device import ZNSDevice


def event(obj_id=0, size=1, owner=0, batch=0, cls=LifetimeClass.MEDIUM):
    return ObjectEvent(
        time=0, kind="create", obj_id=obj_id, size_pages=size,
        owner=owner, batch=batch, lifetime_class=cls,
    )


def make_store(policy=no_hint, **kwargs):
    zoned = ZonedGeometry.small()
    return ZonedObjectStore(ZNSDevice(zoned), hint_policy=policy, **kwargs)


class TestHintPolicies:
    def test_no_hint_single_label(self):
        assert no_hint(event(owner=1)) == no_hint(event(owner=2))

    def test_owner_separates(self):
        assert by_owner(event(owner=1)) != by_owner(event(owner=2))

    def test_batch_bounded_labels(self):
        labels = {by_batch(event(batch=b)) for b in range(100)}
        assert len(labels) == 4

    def test_oracle_uses_lifetime_class(self):
        a = by_lifetime_oracle(event(cls=LifetimeClass.SHORT))
        b = by_lifetime_oracle(event(cls=LifetimeClass.LONG))
        assert a != b

    def test_registry_complete(self):
        assert set(HINT_POLICIES) == {"none", "owner", "batch", "oracle"}


class TestPutDelete:
    def test_put_and_contains(self):
        store = make_store()
        store.put(event(obj_id=1, size=3))
        assert store.contains(1)
        assert store.live_pages(store.objects[1].zone) == 3

    def test_duplicate_put_rejected(self):
        store = make_store()
        store.put(event(obj_id=1))
        with pytest.raises(ValueError):
            store.put(event(obj_id=1))

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_store().put(event(size=0))

    def test_delete_marks_dead(self):
        store = make_store()
        store.put(event(obj_id=1, size=2))
        zone = store.objects[1].zone
        store.delete(1)
        assert not store.contains(1)
        assert store.live_pages(zone) == 0

    def test_delete_unknown_is_noop(self):
        make_store().delete(999)

    def test_different_labels_use_different_zones(self):
        store = make_store(policy=by_owner)
        store.put(event(obj_id=1, owner=0))
        store.put(event(obj_id=2, owner=1))
        assert store.objects[1].zone != store.objects[2].zone


class TestReclaim:
    def test_dead_zones_reset_for_free(self):
        store = make_store()
        pages_per_zone = store.device.geometry.pages_per_zone
        # Fill a few zones then kill everything.
        count = 3 * pages_per_zone
        for i in range(count):
            store.put(event(obj_id=i))
        for i in range(count):
            store.delete(i)
        store.reclaim(store.free_zone_count + 2)
        assert store.stats.free_resets >= 2
        assert store.stats.relocated_pages == 0

    def test_survivors_relocated(self):
        store = make_store()
        pages_per_zone = store.device.geometry.pages_per_zone
        for i in range(2 * pages_per_zone):
            store.put(event(obj_id=i))
        # Kill all but one object in the first zone.
        first_zone = store.objects[0].zone
        survivors = [i for i in range(2 * pages_per_zone)
                     if store.objects[i].zone == first_zone][:1]
        for i in range(2 * pages_per_zone):
            if i not in survivors and store.objects[i].zone == first_zone:
                store.delete(i)
        before = store.free_zone_count
        store.reclaim(before + 1)
        assert store.contains(survivors[0])
        assert store.stats.relocated_pages >= 1
        store.check_invariants()

    def test_full_workload_preserves_live_objects(self):
        zoned = ZonedGeometry.small()
        store = ZonedObjectStore(ZNSDevice(zoned), hint_policy=by_owner)
        capacity = zoned.zone_count * zoned.pages_per_zone
        wl = ObjectLifetimeWorkload(
            num_objects=capacity, owners=4, size_pages=2,
            lifetime_scale=0.85 * capacity / (8 * 2) / 7600.0, seed=12,
        )
        live = set()
        for e in wl.events():
            if e.kind == "create":
                store.put(e)
                live.add(e.obj_id)
            else:
                store.delete(e.obj_id)
                live.discard(e.obj_id)
        assert {o for o in live if store.contains(o)} == live
        store.check_invariants()

    def test_store_full_raises(self):
        store = make_store(reserve_zones=1)
        capacity = store.device.zone_count * store.device.geometry.pages_per_zone
        with pytest.raises(StoreFullError):
            for i in range(capacity + 1):
                store.put(event(obj_id=i))  # nothing ever dies


class TestWaAccounting:
    def test_wa_one_without_relocation(self):
        store = make_store()
        for i in range(10):
            store.put(event(obj_id=i))
        assert store.stats.write_amplification == pytest.approx(1.0)

    def test_oracle_beats_blind_on_lifetime_workload(self):
        def run(policy_name):
            zoned = ZonedGeometry.small()
            store = ZonedObjectStore(
                ZNSDevice(zoned), hint_policy=HINT_POLICIES[policy_name]
            )
            capacity = zoned.zone_count * zoned.pages_per_zone
            wl = ObjectLifetimeWorkload(
                num_objects=int(2.5 * capacity // 2), owners=6, size_pages=2,
                lifetime_scale=0.85 * capacity / (8 * 2) / 7600.0, seed=13,
            )
            for e in wl.events():
                if e.kind == "create":
                    store.put(e)
                else:
                    store.delete(e.obj_id)
            return store.stats.write_amplification

        assert run("oracle") <= run("none")
