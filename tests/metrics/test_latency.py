"""Tests for latency recording and summaries."""

import numpy as np
import pytest

from repro.metrics.latency import LatencyRecorder


def test_empty_summary_is_zeros():
    s = LatencyRecorder().summary()
    assert s.count == 0
    assert s.mean == 0.0
    assert s.p99 == 0.0


def test_exact_percentiles_below_cap():
    rec = LatencyRecorder()
    rec.extend(list(map(float, range(1, 101))))
    s = rec.summary()
    assert s.count == 100
    assert s.mean == pytest.approx(50.5)
    assert s.p50 == pytest.approx(50.5)
    assert s.max == 100.0


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyRecorder().record(-1.0)


def test_reservoir_bounds_memory():
    rec = LatencyRecorder(reservoir_size=100, rng=np.random.default_rng(0))
    rec.extend([float(i) for i in range(10_000)])
    assert rec.count == 10_000
    assert len(rec._samples) == 100


def test_reservoir_percentiles_close_to_truth():
    rng = np.random.default_rng(1)
    data = rng.exponential(100.0, size=50_000)
    rec = LatencyRecorder(reservoir_size=5_000, rng=np.random.default_rng(2))
    rec.extend(list(data))
    true_p99 = float(np.percentile(data, 99))
    assert rec.percentile(99) == pytest.approx(true_p99, rel=0.15)


def test_mean_and_max_exact_despite_reservoir():
    rec = LatencyRecorder(reservoir_size=10, rng=np.random.default_rng(0))
    values = [float(i) for i in range(1000)]
    rec.extend(values)
    assert rec.mean == pytest.approx(sum(values) / len(values))
    assert rec.summary().max == 999.0


def test_reset_clears_state():
    rec = LatencyRecorder()
    rec.extend([1.0, 2.0, 3.0])
    rec.reset()
    assert rec.count == 0
    assert rec.summary().max == 0.0


def test_ratio_to_computes_factors():
    fast = LatencyRecorder()
    slow = LatencyRecorder()
    fast.extend([10.0] * 100)
    slow.extend([40.0] * 100)
    ratios = fast.summary().ratio_to(slow.summary())
    assert ratios["mean"] == pytest.approx(4.0)
    assert ratios["p99"] == pytest.approx(4.0)


def test_ratio_to_handles_zero_baseline():
    zero = LatencyRecorder().summary()
    other = LatencyRecorder()
    other.record(5.0)
    assert zero.ratio_to(other.summary())["mean"] == float("inf")
