"""Tests for op counters, throughput meters, and WA accounting."""

import pytest

from repro.metrics.counters import OpCounter, ThroughputMeter
from repro.metrics.wa import WriteAmpAccounting


class TestOpCounter:
    def test_notes_accumulate(self):
        c = OpCounter()
        c.note_read(4096)
        c.note_write(4096)
        c.note_write(4096)
        c.note_erase()
        c.note_copy(4096)
        assert (c.reads, c.writes, c.erases, c.copies) == (1, 2, 1, 1)
        assert c.bytes_written == 8192
        assert c.bytes_copied == 4096

    def test_snapshot_is_independent(self):
        c = OpCounter()
        c.note_write(100)
        snap = c.snapshot()
        c.note_write(100)
        assert snap.writes == 1
        assert c.writes == 2

    def test_delta_between_snapshots(self):
        c = OpCounter()
        c.note_write(100)
        before = c.snapshot()
        c.note_write(100)
        c.note_erase()
        d = c.delta(before)
        assert d.writes == 1
        assert d.erases == 1
        assert d.bytes_written == 100


class TestThroughputMeter:
    def test_mb_per_sec(self):
        m = ThroughputMeter(start_time=0.0)
        # 10 MiB over 1 second (1e6 us).
        m.record(10 * 1024 * 1024, now=1e6)
        assert m.mb_per_sec() == pytest.approx(10.0)

    def test_ops_per_sec(self):
        m = ThroughputMeter(start_time=0.0)
        for i in range(100):
            m.record(1, now=(i + 1) * 1e4)
        assert m.ops_per_sec() == pytest.approx(100.0)

    def test_zero_elapsed_is_zero_rate(self):
        m = ThroughputMeter()
        assert m.mb_per_sec() == 0.0

    def test_reset_starts_new_window(self):
        m = ThroughputMeter(start_time=0.0)
        m.record(1000, now=1e6)
        m.reset(now=1e6)
        assert m.bytes_done == 0
        m.record(5 * 1024 * 1024, now=1.5e6)
        assert m.mb_per_sec() == pytest.approx(10.0)


class TestWriteAmpAccounting:
    def test_no_amplification_when_layers_pass_through(self):
        acct = WriteAmpAccounting()
        acct.record_user(1000)
        acct.record_flash(1000)
        b = acct.breakdown()
        assert b.total == pytest.approx(1.0)

    def test_device_wa_isolated(self):
        acct = WriteAmpAccounting()
        acct.record_user(1000)
        acct.record_host(1000)
        acct.record_flash(2500)
        b = acct.breakdown()
        assert b.application == pytest.approx(1.0)
        assert b.host == pytest.approx(1.0)
        assert b.device == pytest.approx(2.5)
        assert b.total == pytest.approx(2.5)

    def test_layers_multiply(self):
        acct = WriteAmpAccounting()
        acct.record_user(100)
        acct.record_app(300)  # LSM compaction x3
        acct.record_host(300)
        acct.record_flash(600)  # device GC x2
        b = acct.breakdown()
        assert b.application == pytest.approx(3.0)
        assert b.device == pytest.approx(2.0)
        assert b.total == pytest.approx(6.0)

    def test_empty_accounting_is_unity(self):
        assert WriteAmpAccounting().total == pytest.approx(1.0)

    def test_str_contains_factors(self):
        acct = WriteAmpAccounting()
        acct.record_user(100)
        acct.record_flash(150)
        assert "1.50" in str(acct.breakdown())
