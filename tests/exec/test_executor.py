"""Tests for the serial/pooled executor: ordering, identity, cache reuse."""

import io

import pytest

from repro.exec import (
    ExecutionRecord,
    Executor,
    NullReporter,
    ProgressReporter,
    ResultCache,
    execute,
)
from repro.experiments.base import ExperimentConfig

# Experiments chosen for speed: T1/E2/E6/E10 are pure-computation tables
# (~milliseconds); E9 is the cheapest sweep-style experiment.
FAST_IDS = ["T1", "E2", "E6", "E10"]


class TestSerial:
    def test_records_in_input_order(self):
        configs = [ExperimentConfig(i) for i in FAST_IDS]
        records = Executor(jobs=1).run(configs)
        assert [r.config.experiment_id for r in records] == FAST_IDS
        assert all(isinstance(r, ExecutionRecord) for r in records)
        assert all(not r.cached for r in records)
        assert all(r.result.experiment_id == r.config.experiment_id for r in records)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Executor(jobs=0)

    def test_execute_wrapper(self):
        records = execute([ExperimentConfig("E2")])
        assert records[0].result.headline["reduction_factor"] == 4096


class TestCacheIntegration:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path, version="pinned")
        configs = [ExperimentConfig(i) for i in FAST_IDS]
        first = Executor(jobs=1, cache=cache).run(configs)
        second = Executor(jobs=1, cache=ResultCache(tmp_path, version="pinned")).run(configs)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert [r.result for r in first] == [r.result for r in second]

    def test_cache_disabled_recomputes(self):
        records = Executor(jobs=1, cache=None).run([ExperimentConfig("E2")])
        assert not records[0].cached

    def test_partial_cache_mixes(self, tmp_path):
        cache = ResultCache(tmp_path, version="pinned")
        Executor(jobs=1, cache=cache).run([ExperimentConfig("E2")])
        records = Executor(jobs=1, cache=cache).run(
            [ExperimentConfig("E2"), ExperimentConfig("E6")]
        )
        assert records[0].cached
        assert not records[1].cached


class TestPooled:
    def test_parallel_matches_serial(self):
        configs = [ExperimentConfig(i) for i in FAST_IDS]
        serial = Executor(jobs=1).run(configs)
        pooled = Executor(jobs=2).run(configs)
        assert [r.result for r in serial] == [r.result for r in pooled]

    def test_sweep_fan_out_matches_serial(self):
        # E9 publishes a SWEEP, so jobs>1 runs its points as separate
        # worker tasks and combines in the parent -- results must be
        # bit-identical to the serial path.
        config = ExperimentConfig("E9")
        serial = Executor(jobs=1).run([config])
        pooled = Executor(jobs=4).run([config])
        assert serial[0].result == pooled[0].result

    def test_pooled_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path, version="pinned")
        configs = [ExperimentConfig(i) for i in FAST_IDS]
        Executor(jobs=2, cache=cache).run(configs)
        again = Executor(jobs=2, cache=ResultCache(tmp_path, version="pinned")).run(configs)
        assert all(r.cached for r in again)


class TestProgressReporting:
    def test_reporter_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        Executor(jobs=1, reporter=reporter).run([ExperimentConfig("E2")])
        out = stream.getvalue()
        assert "E2" in out
        assert "start" in out
        assert "done in" in out
        assert "1 experiment(s)" in out

    def test_cached_marked_in_report(self, tmp_path):
        cache = ResultCache(tmp_path, version="pinned")
        Executor(jobs=1, cache=cache).run([ExperimentConfig("E2")])
        stream = io.StringIO()
        Executor(
            jobs=1, cache=cache, reporter=ProgressReporter(stream=stream)
        ).run([ExperimentConfig("E2")])
        assert "cached" in stream.getvalue()

    def test_null_reporter_is_silent(self, capsys):
        Executor(jobs=1, reporter=NullReporter()).run([ExperimentConfig("E2")])
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
