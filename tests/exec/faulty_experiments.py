"""Registry-shaped experiment modules that misbehave on command.

Tests monkeypatch these into ``repro.experiments.runner.MODULES`` under a
synthetic id. Pool workers are forked on Linux, so the patched registry
and the fault-mode environment variables propagate into workers without
any pickling of the modules themselves.
"""

from __future__ import annotations

import os
import signal
import time

from repro.exec.errors import TransientError
from repro.experiments.base import ExperimentConfig, ExperimentResult, SweepSpec

#: How the designated bad unit misbehaves: "" (healthy), "raise", "kill"
#: (SIGKILL its own worker process), "hang", or "transient" (fail once,
#: succeed on retry, coordinated through REPRO_TEST_SENTINEL).
MODE_ENV = "REPRO_TEST_FAULT_MODE"
SENTINEL_ENV = "REPRO_TEST_SENTINEL"

POINTS = 4
BAD_SLOT = 2


def _misbehave() -> None:
    mode = os.environ.get(MODE_ENV, "")
    if mode == "raise":
        raise ValueError("injected unit failure")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(120)
    if mode == "transient":
        sentinel = os.environ[SENTINEL_ENV]
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as handle:
                handle.write("tripped")
            raise TransientError("flaky exactly once")


def _points(config: ExperimentConfig) -> list[dict]:
    return [{"slot": slot} for slot in range(POINTS)]


def _point(slot: int) -> dict:
    if slot == BAD_SLOT:
        _misbehave()
    return {"slot": slot, "value": slot * slot}


def _combine(config: ExperimentConfig, rows: list[dict]) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=config.experiment_id,
        title="sweep under fault injection",
        paper_claim="",
        rows=rows,
        headline={"total": sum(row["value"] for row in rows), "rows": len(rows)},
    )


SWEEP = SweepSpec(points=_points, point=_point, combine=_combine)


def run(config: ExperimentConfig) -> ExperimentResult:
    return SWEEP.run(config)


class _WholeModule:
    """A registry entry without a SWEEP: the whole run misbehaves."""

    __name__ = __name__ + "._WholeModule"

    @staticmethod
    def run(config: ExperimentConfig) -> ExperimentResult:
        _misbehave()
        return ExperimentResult(
            experiment_id=config.experiment_id,
            title="whole-experiment unit",
            paper_claim="",
            headline={"ok": 1},
        )


WHOLE = _WholeModule()
