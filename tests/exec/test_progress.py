"""Tests for per-unit progress accounting: exactly-once, monotone, bounded.

PR context: nested fan-out (fleet shards inside a sweep) used to bump
the progress line once per payload, so a straggler result landing after
its retry double-counted. The executor now keys completed units by
(experiment, slot) and reports each exactly once.
"""

import io

from repro.exec import Executor, NullReporter, ProgressReporter
from repro.experiments.base import ExperimentConfig


class RecordingReporter(NullReporter):
    """Captures unit_finished calls; swallows everything else."""

    def __init__(self) -> None:
        super().__init__()
        self.units: list[tuple[str, int, int, int]] = []

    def unit_finished(self, config, index, total, done_units, total_units):
        self.units.append((config.experiment_id, index, done_units, total_units))


class TestUnitAccounting:
    def test_pooled_sweep_reports_each_point_exactly_once(self):
        # E9 is the cheapest sweep; jobs>1 fans its points out as units.
        reporter = RecordingReporter()
        Executor(jobs=2, reporter=reporter).run([ExperimentConfig("E9")])
        assert reporter.units, "pooled sweep must report per-unit progress"
        assert {experiment_id for experiment_id, _, _, _ in reporter.units} == {"E9"}
        totals = {total for _, _, _, total in reporter.units}
        assert len(totals) == 1
        (total,) = totals
        done = [done for _, _, done, _ in reporter.units]
        # Exactly-once: every count 1..total appears once, in order.
        assert done == list(range(1, total + 1))

    def test_multiple_sweeps_account_independently(self):
        reporter = RecordingReporter()
        configs = [ExperimentConfig("E9"), ExperimentConfig("E9", seed=1)]
        Executor(jobs=2, reporter=reporter).run(configs)
        for config_index in (0, 1):
            done = sorted(
                done
                for _, index, done, _ in reporter.units
                if index == config_index
            )
            totals = {
                total
                for _, index, _, total in reporter.units
                if index == config_index
            }
            (total,) = totals
            # Each config's counter runs 1..total with no repeats, even
            # though both configs' units interleave in one pool.
            assert done == list(range(1, total + 1))


class TestReporterLines:
    def test_unit_finished_line_format(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.unit_finished(ExperimentConfig("E16"), 0, 3, 2, 24)
        line = stream.getvalue()
        assert "E16" in line
        assert "point 2/24" in line
        assert line.startswith("[ 1/3]")

    def test_null_reporter_swallows_unit_lines(self, capsys):
        NullReporter().unit_finished(ExperimentConfig("E9"), 0, 1, 1, 4)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
