"""Tests for the repro.exec execution subsystem."""
