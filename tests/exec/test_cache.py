"""Tests for the content-addressed result cache."""

from repro.exec.cache import ResultCache, code_version, default_cache_dir
from repro.experiments.base import ExperimentConfig, ExperimentResult


def make_result(experiment_id="E2", factor=2.0):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="t",
        paper_claim="c",
        rows=[{"k": 1}],
        headline={"factor": factor},
    )


class TestKeying:
    def test_key_depends_on_config(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        a = ExperimentConfig("E1")
        assert cache.key(a) == cache.key(ExperimentConfig("e1"))
        assert cache.key(a) != cache.key(ExperimentConfig("E1", seed=1))
        assert cache.key(a) != cache.key(ExperimentConfig("E1", full=True))
        assert cache.key(a) != cache.key(ExperimentConfig("E1", params={"x": 1}))

    def test_key_depends_on_code_version(self, tmp_path):
        config = ExperimentConfig("E1")
        old = ResultCache(tmp_path, version="v1")
        new = ResultCache(tmp_path, version="v2")
        assert old.key(config) != new.key(config)

    def test_code_version_is_stable_hex(self):
        version = code_version()
        assert version == code_version()
        int(version, 16)
        assert len(version) == 16


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        config = ExperimentConfig("E2")
        assert cache.get(config) is None
        cache.put(config, make_result())
        got = cache.get(config)
        assert got == make_result()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put(ExperimentConfig("E2"), make_result())
        assert cache.get(ExperimentConfig("E2", seed=1)) is None
        assert cache.get(ExperimentConfig("E2", full=True)) is None

    def test_code_version_bump_invalidates(self, tmp_path):
        config = ExperimentConfig("E2")
        ResultCache(tmp_path, version="v1").put(config, make_result())
        assert ResultCache(tmp_path, version="v1").get(config) is not None
        assert ResultCache(tmp_path, version="v2").get(config) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        config = ExperimentConfig("E2")
        cache.put(config, make_result())
        cache.path(config).write_text("{not json")
        assert cache.get(config) is None

    def test_wrong_experiment_id_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        config = ExperimentConfig("E2")
        cache.put(config, make_result(experiment_id="E3"))
        assert cache.get(config) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put(ExperimentConfig("E2"), make_result())
        cache.put(ExperimentConfig("E3", seed=1), make_result("E3"))
        assert cache.clear() == 2
        assert cache.get(ExperimentConfig("E2")) is None


class TestDefaultDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("ZNS_REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("ZNS_REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "zns-repro"
