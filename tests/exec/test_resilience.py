"""Executor survival under failing, crashing, and hanging workers.

The acceptance bar (ISSUE 5): a worker that raises, hangs, or dies must
yield a structured ErrorResult for its own unit of work only -- the rest
of the sweep completes and the run reports the loss instead of dying.

The fault modes are injected through ``tests.exec.faulty_experiments``,
registered under a synthetic id via monkeypatch; pool workers inherit
both (fork) plus the fault-mode env vars.
"""

import json
import os

import pytest

from repro.exec import ErrorResult, Executor, ResultCache, backoff_delay
from repro.exec.errors import error_payload
from repro.experiments import runner
from repro.experiments.base import ExperimentConfig
from tests.exec import faulty_experiments as faulty

FAULTY_ID = "E99"
EXPECTED_GOOD_SLOTS = [s for s in range(faulty.POINTS) if s != faulty.BAD_SLOT]


@pytest.fixture
def registered(monkeypatch):
    monkeypatch.setitem(runner.MODULES, FAULTY_ID, faulty)
    monkeypatch.delenv(faulty.MODE_ENV, raising=False)
    return ExperimentConfig(FAULTY_ID)


@pytest.fixture
def registered_whole(monkeypatch):
    monkeypatch.setitem(runner.MODULES, FAULTY_ID, faulty.WHOLE)
    monkeypatch.delenv(faulty.MODE_ENV, raising=False)
    return ExperimentConfig(FAULTY_ID)


def _set_mode(monkeypatch, mode):
    monkeypatch.setenv(faulty.MODE_ENV, mode)


class TestErrorResult:
    def test_from_exception_captures_traceback(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            err = ErrorResult.from_exception(exc, experiment_id="E1")
        assert err.error_type == "RuntimeError"
        assert "boom" in err.message
        assert "RuntimeError: boom" in err.traceback
        assert not err.is_transient

    def test_synthetic_kinds_are_transient(self):
        for kind in ("Timeout", "WorkerDied", "TransientError"):
            assert ErrorResult("E1", kind, "x").is_transient
        assert not ErrorResult("E1", "ValueError", "x").is_transient

    def test_json_round_trip(self):
        err = ErrorResult("E1", "ValueError", "bad", "tb", "abcd", 3, 2)
        assert ErrorResult.from_dict(json.loads(json.dumps(err.to_dict()))) == err

    def test_error_payload_shape(self):
        payload = error_payload(ValueError("nope"))
        assert payload["__error__"]["error_type"] == "ValueError"
        assert "nope" in payload["__error__"]["traceback"]

    def test_backoff_is_deterministic_and_bounded(self):
        delays = [backoff_delay(a) for a in range(1, 10)]
        assert delays == [backoff_delay(a) for a in range(1, 10)]
        assert all(0 < d <= 5.0 for d in delays)
        # Exponential envelope: the cap dominates eventually.
        assert backoff_delay(1) < 0.2


class TestSweepPointFailure:
    def test_raising_point_costs_only_itself(self, registered, monkeypatch):
        _set_mode(monkeypatch, "raise")
        (record,) = Executor(jobs=2).run([registered])
        assert record.error is None  # combine still produced a result
        assert not record.ok
        errors = record.result.metrics["errors"]
        assert len(errors) == 1
        assert errors[0]["error_type"] == "ValueError"
        assert errors[0]["point_index"] == faulty.BAD_SLOT
        assert "injected unit failure" in errors[0]["traceback"]
        assert errors[0]["config_hash"] == registered.content_hash()[:16]
        # The three surviving points combined normally.
        assert [row["slot"] for row in record.result.rows] == EXPECTED_GOOD_SLOTS

    def test_serial_whole_run_failure_is_structured(self, registered, monkeypatch):
        _set_mode(monkeypatch, "raise")
        (record,) = Executor(jobs=1).run([registered])
        assert record.error is not None
        assert record.error.error_type == "ValueError"
        assert "FAILED" in record.result.title
        assert record.result.metrics["errors"][0]["error_type"] == "ValueError"

    def test_failures_never_cached(self, registered, monkeypatch, tmp_path):
        _set_mode(monkeypatch, "raise")
        cache = ResultCache(tmp_path, version="pinned")
        Executor(jobs=2, cache=cache).run([registered])
        monkeypatch.delenv(faulty.MODE_ENV)
        (record,) = Executor(jobs=2, cache=cache).run([registered])
        assert not record.cached and record.ok

    def test_healthy_sweep_unaffected(self, registered):
        (record,) = Executor(jobs=2).run([registered])
        assert record.ok
        assert record.result.headline == {"total": 14, "rows": 4}


class TestWorkerDeath:
    def test_killed_worker_yields_error_and_sweep_completes(
        self, registered, monkeypatch
    ):
        _set_mode(monkeypatch, "kill")
        (record,) = Executor(jobs=2).run([registered])
        assert not record.ok
        errors = record.result.metrics["errors"]
        assert [e["error_type"] for e in errors] == ["WorkerDied"]
        assert errors[0]["point_index"] == faulty.BAD_SLOT
        assert [row["slot"] for row in record.result.rows] == EXPECTED_GOOD_SLOTS

    def test_whole_experiment_killed_worker(self, registered_whole, monkeypatch):
        _set_mode(monkeypatch, "kill")
        good = ExperimentConfig("E2")
        bad, ok = Executor(jobs=2).run([registered_whole, good])
        assert bad.error is not None
        assert bad.error.error_type == "WorkerDied"
        assert ok.ok  # the innocent experiment still completed


class TestHungWorker:
    def test_timeout_yields_error_and_sweep_completes(self, registered, monkeypatch):
        _set_mode(monkeypatch, "hang")
        (record,) = Executor(jobs=2, timeout_s=2.0).run([registered])
        assert not record.ok
        errors = record.result.metrics["errors"]
        assert [e["error_type"] for e in errors] == ["Timeout"]
        assert errors[0]["point_index"] == faulty.BAD_SLOT
        assert [row["slot"] for row in record.result.rows] == EXPECTED_GOOD_SLOTS


class TestRetry:
    def test_transient_failure_retried_to_success(
        self, registered, monkeypatch, tmp_path
    ):
        _set_mode(monkeypatch, "transient")
        monkeypatch.setenv(faulty.SENTINEL_ENV, str(tmp_path / "tripped"))
        (record,) = Executor(jobs=2, retries=2).run([registered])
        assert record.ok
        assert record.result.headline == {"total": 14, "rows": 4}

    def test_transient_failure_without_retries_fails(
        self, registered, monkeypatch, tmp_path
    ):
        _set_mode(monkeypatch, "transient")
        monkeypatch.setenv(faulty.SENTINEL_ENV, str(tmp_path / "tripped"))
        (record,) = Executor(jobs=2, retries=0).run([registered])
        assert not record.ok
        assert (
            record.result.metrics["errors"][0]["error_type"] == "TransientError"
        )

    def test_deterministic_failure_not_retried(self, registered, monkeypatch):
        # A ValueError is not transient; retries must not re-run it.
        _set_mode(monkeypatch, "raise")
        (record,) = Executor(jobs=2, retries=3).run([registered])
        errors = record.result.metrics["errors"]
        assert errors[0]["attempts"] == 1

    def test_serial_transient_retry(self, registered, monkeypatch, tmp_path):
        _set_mode(monkeypatch, "transient")
        monkeypatch.setenv(faulty.SENTINEL_ENV, str(tmp_path / "tripped"))
        (record,) = Executor(jobs=1, retries=1).run([registered])
        assert record.ok


class TestExecutorValidation:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            Executor(timeout_s=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError):
            Executor(retries=-1)
