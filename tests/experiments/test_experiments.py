"""Smoke and shape tests for the experiment harness.

Fast experiments are checked for their headline *shape* (who wins, which
direction); slow DES experiments are exercised end-to-end by the benchmark
suite instead and only registry-level properties are checked here.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentResult


class TestRegistry:
    def test_all_design_md_ids_present(self):
        expected = {"T1"} | {f"E{i}" for i in range(1, 18)} | {"A1", "A2", "A3", "A4", "A5"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_lookup_case_insensitive(self):
        result = run_experiment("t1")
        assert result.experiment_id == "T1"


class TestResultFormatting:
    def test_format_renders_rows_and_headline(self):
        result = ExperimentResult(
            experiment_id="X",
            title="demo",
            paper_claim="c",
            rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": 0.333}],
            headline={"factor": 3.0},
            notes="n",
        )
        text = result.format()
        assert "X: demo" in text
        assert "factor=3" in text
        assert "notes: n" in text

    def test_format_empty_rows(self):
        text = ExperimentResult("X", "t", "c").format()
        assert "X: t" in text


class TestT1:
    def test_reproduces_table_exactly(self):
        result = run_experiment("T1")
        assert result.headline["exact_match"] is True
        assert result.headline["simplified_pct"] == pytest.approx(23.1, abs=0.1)


class TestE2:
    def test_dram_reduction(self):
        result = run_experiment("E2")
        assert result.headline["conventional_gb_per_tb"] == pytest.approx(1.0)
        assert result.headline["zns_kb_per_tb"] == pytest.approx(256.0)
        assert result.headline["reduction_factor"] == 4096


class TestE6:
    def test_cost_shape(self):
        result = run_experiment("E6")
        assert result.headline["premium_exceeds_2x"] is True
        assert result.headline["zns_saving_vs_28pct_op"] > 0.1


class TestE8:
    def test_dynamic_beats_static(self):
        result = run_experiment("E8")
        assert result.headline["dynamic_satisfaction"] > result.headline["static_satisfaction"]
        assert result.headline["multiplexing_gain"] > 1.1


class TestE10:
    def test_erase_program_ratio(self):
        result = run_experiment("E10")
        assert result.headline["within_5x_to_7x"] is True
        assert result.headline["measured_on_array"] == pytest.approx(
            result.headline["tlc_erase_program_ratio"], rel=0.01
        )
        # The ladder rows cover all five cell technologies.
        assert [r["cell"] for r in result.rows] == ["SLC", "MLC", "TLC", "QLC", "PLC"]


class TestE7:
    def test_append_scales_writes_do_not(self):
        result = run_experiment("E7")
        assert result.headline["append_speedup_at_max_writers"] > 2.0
        assert result.headline["write_mode_scaling"] < 1.3
