"""Tests for E16: shard-count invariance and the fleet sweep's contract.

The acceptance property of the fleet redesign is that the shard count is
a *partitioning* choice, never a *results* choice: the same config with
``shards=1`` and ``shards=2`` must combine to identical rows, which is
what makes ``zns-repro run e16 --jobs N`` byte-identical for every N.
"""

import pytest

from repro.block.factory import DeviceSpec
from repro.experiments.base import ExperimentConfig
from repro.experiments.e16_fleet_serving import SWEEP, device_spec, fleet_plan, run

# One scenario per arm, tiny rack, short run: ~seconds, not minutes.
_TINY = {
    "placements": ["pack"],
    "loads": ["bursty"],
    "fault_scales": [0.0],
    "devices": 2,
    "tenants": 2,
    "ticks": 30,
    "warmup": 10,
}


def _config(**overrides) -> ExperimentConfig:
    return ExperimentConfig("E16", params={**_TINY, **overrides})


class TestDeviceSpec:
    def test_arms_build_the_serving_kinds(self):
        conv = device_spec("conventional", 0.0, seed=0)
        zns = device_spec("zns", 0.0, seed=0)
        assert conv.kind == "conventional-ftl"
        assert zns.kind == "zns"
        assert isinstance(conv, DeviceSpec)
        assert conv.fault_plan is None and zns.fault_plan is None

    def test_fault_scale_arms_the_fleet_plan(self):
        spec = device_spec("zns", 1.0, seed=3)
        assert spec.fault_plan == fleet_plan(3)
        assert spec.fault_scale == 1.0


class TestSweepShape:
    def test_points_cover_every_scenario_shard(self):
        config = _config(shards=2)
        points = SWEEP.points(config)
        # 2 arms x 1 placement x 1 load x 1 scale x 2 shards.
        assert len(points) == 4
        assert {p["shard"] for p in points} == {0, 1}
        assert all(p["shards"] == 2 for p in points)
        assert {p["arm"] for p in points} == {"conventional", "zns"}

    def test_points_are_picklable_primitives(self):
        for point in SWEEP.points(_config(shards=1)):
            for value in point.values():
                assert isinstance(value, (str, int, float))


class TestShardInvariance:
    @pytest.fixture(scope="class")
    def one_shard(self):
        return run(_config(shards=1))

    @pytest.fixture(scope="class")
    def two_shards(self):
        return run(_config(shards=2))

    def test_rows_identical_across_shard_counts(self, one_shard, two_shards):
        assert one_shard.rows == two_shards.rows

    def test_headline_identical_across_shard_counts(self, one_shard, two_shards):
        assert one_shard.headline == two_shards.headline

    def test_result_shape(self, one_shard):
        assert one_shard.experiment_id == "E16"
        assert len(one_shard.rows) == 2  # one row per arm's lone scenario
        for row in one_shard.rows:
            assert row["reads"] > 0 and row["writes"] > 0
            assert row["read_p999_us"] >= row["read_p99_us"] > 0
        headline = one_shard.headline
        assert isinstance(headline["zns_win_survives"], bool)
        assert headline["hard_scenario"] == "pack/bursty/0.0"
        assert headline["zns_p99_worst_us"] > 0
        assert headline["conv_p99_worst_us"] > 0
