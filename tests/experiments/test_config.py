"""Tests for the ExperimentConfig/ExperimentResult API and the entry point."""

import json

import pytest

from repro.experiments.base import (
    SCHEMA_VERSION,
    ExperimentConfig,
    ExperimentResult,
    experiment,
)


class TestConfigNormalization:
    def test_id_upper_cased(self):
        assert ExperimentConfig("e1").experiment_id == "E1"

    def test_full_and_seed_coerced(self):
        cfg = ExperimentConfig("E1", full=1, seed="7")
        assert cfg.full is True
        assert cfg.seed == 7

    def test_quick_is_not_full(self):
        assert ExperimentConfig("E1").quick is True
        assert ExperimentConfig("E1", full=True).quick is False

    def test_params_dict_frozen_and_hashable(self):
        cfg = ExperimentConfig("E1", params={"b": [2, 1], "a": {"x": 1}})
        hash(cfg)  # must not raise
        assert cfg.param("b") == [2, 1]
        assert cfg.param("a") == [["x", 1]]  # dicts freeze to sorted pairs
        assert cfg.param("missing", 42) == 42

    def test_params_order_insensitive(self):
        a = ExperimentConfig("E1", params={"x": 1, "y": 2})
        b = ExperimentConfig("E1", params={"y": 2, "x": 1})
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_with_params_merges(self):
        cfg = ExperimentConfig("E1", params={"x": 1})
        merged = cfg.with_params(y=2)
        assert merged.param("x") == 1
        assert merged.param("y") == 2
        assert cfg.param("y") is None  # original untouched


class TestConfigSerialization:
    def test_round_trip(self):
        cfg = ExperimentConfig("A1", full=True, seed=3, params={"policies": ["greedy"]})
        clone = ExperimentConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.content_hash() == cfg.content_hash()

    def test_round_trip_through_json(self):
        cfg = ExperimentConfig("E9", params={"policies": ["none", "oracle"]})
        clone = ExperimentConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone == cfg

    def test_schema_version_stamped(self):
        assert ExperimentConfig("E1").to_dict()["schema_version"] == SCHEMA_VERSION

    def test_unsupported_schema_rejected(self):
        payload = ExperimentConfig("E1").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ExperimentConfig.from_dict(payload)

    def test_content_hash_distinguishes_configs(self):
        base = ExperimentConfig("E1")
        assert base.content_hash() != ExperimentConfig("E1", seed=1).content_hash()
        assert base.content_hash() != ExperimentConfig("E1", full=True).content_hash()
        assert base.content_hash() != ExperimentConfig("E2").content_hash()
        assert (
            base.content_hash()
            != ExperimentConfig("E1", params={"k": 1}).content_hash()
        )


class TestResultSerialization:
    def _result(self):
        return ExperimentResult(
            experiment_id="E1",
            title="t",
            paper_claim="c",
            rows=[{"op_pct": 0.0, "wa": 1.5}],
            headline={"factor": 2.0},
            notes="n",
        )

    def test_round_trip(self):
        result = self._result()
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone == result

    def test_round_trip_through_json(self):
        result = self._result()
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_unsupported_schema_rejected(self):
        payload = self._result().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.from_dict(payload)

    def test_metrics_omitted_when_empty(self):
        assert "metrics" not in self._result().to_dict()

    def test_metrics_round_trip(self):
        result = self._result()
        result.metrics = {"flash_ops": {"flash.nand": {"read": 2}}}
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.metrics == result.metrics


@experiment("X1")
def _demo_run(config):
    return ExperimentResult(
        experiment_id="X1",
        title="demo",
        paper_claim="",
        headline={"full": config.full, "seed": config.seed, "knob": config.param("knob")},
    )


class TestExperimentDecorator:
    def test_config_call(self):
        result = _demo_run(ExperimentConfig("X1", full=True, seed=5))
        assert result.headline == {"full": True, "seed": 5, "knob": None}

    def test_params_flow_through_config(self):
        result = _demo_run(ExperimentConfig("X1", params={"knob": 3}))
        assert result.headline["knob"] == 3

    def test_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError):
            _demo_run(quick=False, seed=5)

    def test_legacy_positional_quick_rejected(self):
        with pytest.raises(TypeError, match="ExperimentConfig"):
            _demo_run(False)

    def test_missing_config_rejected(self):
        with pytest.raises(TypeError):
            _demo_run()

    def test_non_config_positional_rejected(self):
        with pytest.raises(TypeError, match="ExperimentConfig"):
            _demo_run({"experiment_id": "X1"})

    def test_wrong_experiment_id_rejected(self):
        with pytest.raises(ValueError, match="X1"):
            _demo_run(ExperimentConfig("E1"))

    def test_wrapper_metadata(self):
        assert _demo_run.experiment_id == "X1"
        assert callable(_demo_run.__wrapped_config_fn__)
