"""E15 fault-resilience experiment: registry wiring, smoke run, figure."""

from repro.experiments.base import ExperimentConfig
from repro.experiments.e15_fault_resilience import SWEEP, base_plan, measure_arm
from repro.experiments.figures import render_figure
from repro.experiments.runner import DEFAULT_IDS, MODULES


class TestRegistry:
    def test_registered_but_not_in_default_suite(self):
        # E15/E17 inject faults and E16 is a long fleet sweep; 'run all'
        # output must stay fault-free and byte-stable, so all three run
        # only when named explicitly.
        assert "E15" in MODULES
        assert "E15" not in DEFAULT_IDS
        assert set(DEFAULT_IDS) == set(MODULES) - {"E15", "E16", "E17"}

    def test_base_plan_is_armed_and_seeded(self):
        plan = base_plan(seed=0)
        assert plan.armed
        assert plan.grown_bad_blocks and plan.zone_offline_at
        assert base_plan(seed=0) == base_plan(seed=0)
        assert base_plan(seed=1) != base_plan(seed=0)


class TestMeasurement:
    def test_clean_arm_injects_nothing(self):
        row = measure_arm("conventional", 0.0, quick=True, seed=0)
        assert row["faults_injected"] == 0
        assert row["capacity_lost_pct"] == 0.0
        assert not row["died"]
        assert row["write_amplification"] > 1.0

    def test_faulted_arm_injects_and_recovers(self):
        clean = measure_arm("zns", 0.0, quick=True, seed=0)
        faulted = measure_arm("zns", 1.0, quick=True, seed=0)
        assert faulted["faults_injected"] > 0
        assert faulted["recovered_faults"] > 0
        assert faulted["capacity_lost_pct"] > 0.0
        # Surviving the plan costs write amplification.
        assert faulted["write_amplification"] > clean["write_amplification"]

    def test_rows_are_seed_deterministic(self):
        a = measure_arm("conventional", 1.0, quick=True, seed=3)
        b = measure_arm("conventional", 1.0, quick=True, seed=3)
        assert a == b


class TestSweep:
    def test_quick_sweep_and_figure(self):
        config = ExperimentConfig(
            "E15", full=False, seed=0, params={"fault_scales": [0.0, 1.0]}
        )
        result = SWEEP.run(config)
        assert len(result.rows) == 4  # 2 arms x 2 scales
        assert {row["arm"] for row in result.rows} == {"conventional", "zns"}
        assert result.headline["conv_wa_faulted"] >= result.headline["conv_wa_clean"]
        chart = render_figure(result)
        assert "conv@1x" in chart and "zns@1x" in chart
