"""Tests for E17: reset-pressure sweep shape, registry, shard invariance.

Like E16, the shard count must be a partitioning choice, never a results
choice; E17 additionally arms zone-management faults, so shard
invariance here is the proof that management-fault draws are replayed
per device, not per process.
"""

import pytest

from repro.block.factory import DeviceSpec
from repro.experiments.base import ExperimentConfig
from repro.experiments.e17_reset_pressure import SWEEP, device_spec, mgmt_plan, run
from repro.experiments.runner import DEFAULT_IDS, MODULES

_TINY = {
    "pressures": [0.0, 5_000.0],
    "mgmt_scales": [1.0],
    "devices": 2,
    "tenants": 2,
    "ticks": 60,
    "warmup": 30,
}


def _config(**overrides) -> ExperimentConfig:
    return ExperimentConfig("E17", params={**_TINY, **overrides})


class TestRegistry:
    def test_registered_but_not_in_run_all(self):
        assert "E17" in MODULES
        assert "E17" not in DEFAULT_IDS


class TestDeviceSpec:
    def test_conventional_bar_has_no_zone_knobs(self):
        spec = device_spec("conventional", 20_000.0, 1.0, seed=0)
        assert spec.kind == "conventional-ftl"
        assert isinstance(spec, DeviceSpec)
        assert spec.fault_plan is None

    def test_zns_arms_pressure_and_mgmt_faults(self):
        spec = device_spec("zns-naive", 5_000.0, 1.0, seed=3)
        assert spec.kind == "zns"
        assert dict(spec.zone_mgmt)["reset_us"] == 5_000.0
        assert spec.fault_plan == mgmt_plan(3)
        assert spec.fault_scale == 1.0

    def test_zero_pressure_zero_scale_is_clean(self):
        spec = device_spec("zns-managed", 0.0, 0.0, seed=0)
        assert spec.zone_mgmt == ()
        assert spec.fault_plan is None

    def test_mgmt_plan_has_no_media_faults(self):
        plan = mgmt_plan(0)
        assert plan.reset_fail_prob > 0
        assert plan.finish_timeout_prob > 0
        assert plan.read_error_prob == 0.0
        assert plan.program_fail_prob == 0.0
        assert plan.erase_fail_prob == 0.0


class TestSweepShape:
    def test_points_cover_arms_pressures_shards(self):
        points = SWEEP.points(_config(shards=2))
        # conventional: 1 scenario; each zns arm: 2 pressures x 1 scale;
        # every scenario twice (2 shards).
        assert len(points) == (1 + 2 + 2) * 2
        assert {p["arm"] for p in points} == {
            "conventional",
            "zns-naive",
            "zns-managed",
        }
        conv = [p for p in points if p["arm"] == "conventional"]
        assert {(p["pressure_us"], p["mgmt_scale"]) for p in conv} == {(0.0, 0.0)}

    def test_points_are_picklable_primitives(self):
        for point in SWEEP.points(_config(shards=1)):
            for value in point.values():
                assert isinstance(value, (str, int, float))


class TestShardInvariance:
    @pytest.fixture(scope="class")
    def one_shard(self):
        return run(_config(shards=1))

    @pytest.fixture(scope="class")
    def two_shards(self):
        return run(_config(shards=2))

    def test_rows_identical_across_shard_counts(self, one_shard, two_shards):
        assert one_shard.rows == two_shards.rows

    def test_headline_identical_across_shard_counts(self, one_shard, two_shards):
        assert one_shard.headline == two_shards.headline

    def test_result_shape(self, one_shard):
        assert one_shard.experiment_id == "E17"
        assert len(one_shard.rows) == 5
        for row in one_shard.rows:
            assert row["reads"] > 0 and row["writes"] > 0
            assert row["read_p999_us"] >= row["read_p99_us"] > 0
            if row["arm"] == "conventional":
                assert row["zone_resets"] == 0
            else:
                assert row["zone_resets"] > 0
        headline = one_shard.headline
        assert headline["conventional_p99_us"] > 0
        assert isinstance(headline["naive_loses_win"], bool)
        assert isinstance(headline["managed_keeps_win"], bool)
        assert headline["mgmt_fault_scale"] == 1.0

    def test_managed_arm_uses_the_lifecycle(self, one_shard):
        managed = [r for r in one_shard.rows if r["arm"] == "zns-managed"]
        naive = [r for r in one_shard.rows if r["arm"] == "zns-naive"]
        assert all(r["reserve_hits"] + r["reserve_misses"] > 0 for r in managed)
        assert all(r["reserve_hits"] == 0 and r["reserve_misses"] == 0 for r in naive)
