"""Tests for the analysis renderers and terminal charts."""

import pytest

from repro.analysis import ascii_bars, ascii_series, to_csv, to_markdown
from repro.experiments.base import ExperimentResult


def sample_result():
    return ExperimentResult(
        experiment_id="EX",
        title="demo",
        paper_claim="claims things",
        rows=[
            {"stack": "conv", "wa": 5.0},
            {"stack": "zns", "wa": 1.1},
        ],
        headline={"factor": 4.545},
        notes="a note",
    )


class TestMarkdown:
    def test_contains_table_and_headline(self):
        md = to_markdown(sample_result())
        assert "| stack | wa |" in md
        assert "| conv | 5 |" in md
        assert "**Measured:**" in md
        assert "factor = 4.545" in md
        assert "*Notes:* a note" in md

    def test_header_suppressible(self):
        md = to_markdown(sample_result(), include_header=False)
        assert "### EX" not in md
        assert "| stack | wa |" in md

    def test_empty_rows(self):
        result = ExperimentResult("X", "t", "c")
        assert "| " not in to_markdown(result, include_header=False)


class TestCsv:
    def test_round_trips_rows(self):
        import csv
        import io

        text = to_csv(sample_result())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["stack"] == "conv"
        assert float(rows[1]["wa"]) == pytest.approx(1.1)

    def test_empty_rows_empty_output(self):
        assert to_csv(ExperimentResult("X", "t", "c")) == ""


class TestCharts:
    def test_series_shape(self):
        chart = ascii_series([0, 7, 11, 25], [19.0, 8.3, 5.4, 2.7],
                             width=30, height=8, x_label="op%", y_label="WA")
        lines = chart.splitlines()
        assert len(lines) == 8 + 3  # grid + header + axis + footer
        assert chart.count("*") >= 3  # points may share a cell
        assert "op%" in chart and "WA" in chart

    def test_series_validation(self):
        with pytest.raises(ValueError):
            ascii_series([1], [1])
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1])
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1, 2], width=2)

    def test_series_flat_line(self):
        chart = ascii_series([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in chart  # constant series must not divide by zero

    def test_bars_scale_to_peak(self):
        chart = ascii_bars(["conv", "zns"], [5.0, 1.0], width=10, unit="x")
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 2
        assert "5x" in lines[0]

    def test_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars([], [])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [-1.0])
        with pytest.raises(ValueError):
            ascii_bars(["a", "b"], [1.0])

    def test_zero_bar_has_no_hash(self):
        chart = ascii_bars(["a", "b"], [0.0, 2.0])
        assert chart.splitlines()[0].count("#") == 0


class TestCliFormats:
    def test_markdown_format(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "E2", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "| capacity_tb |" in out

    def test_csv_format(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "E2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("capacity_tb,")


class TestFigures:
    def test_figures_render_for_supported_ids(self):
        from repro.experiments import run_experiment
        from repro.experiments.figures import FIGURES, render_figure

        result = run_experiment("E14", quick=True)
        chart = render_figure(result)
        assert "QLC" in chart
        assert set(FIGURES) == {"E1", "E7", "E9", "E14", "E15"}

    def test_unsupported_id_raises(self):
        from repro.experiments.base import ExperimentResult
        from repro.experiments.figures import render_figure

        with pytest.raises(KeyError, match="no figure"):
            render_figure(ExperimentResult("T1", "t", "c"))

    def test_chart_cli_subcommand(self, capsys):
        from repro.experiments.cli import main

        assert main(["chart", "E14"]) == 0
        out = capsys.readouterr().out
        assert "QLC" in out

    def test_chart_cli_unknown_figure(self, capsys):
        from repro.experiments.cli import main

        assert main(["chart", "E2"]) == 2
        assert "no figure" in capsys.readouterr().err
