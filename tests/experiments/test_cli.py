"""Tests for the zns-repro command-line interface."""

import pytest

from repro.experiments.cli import _DESCRIPTIONS, main
from repro.experiments.runner import EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_descriptions_cover_registry(self):
        assert set(_DESCRIPTIONS) == set(EXPERIMENTS)


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "T1:" in out
        assert "finished in" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e2"]) == 0
        assert "E2:" in capsys.readouterr().out

    def test_seed_flag_accepted(self, capsys):
        assert main(["run", "E10", "--seed", "7"]) == 0
        assert "6.25" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
