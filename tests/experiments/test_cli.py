"""Tests for the zns-repro command-line interface.

The autouse ``_isolated_cache_dir`` fixture (tests/conftest.py) points the
result cache at a per-test directory, so cache state never leaks between
tests or into the developer's real ``~/.cache/zns-repro``.
"""

import json

import pytest

from repro.exec import ResultCache
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.cli import _DESCRIPTIONS, main
from repro.experiments.runner import DEFAULT_IDS, EXPERIMENTS, MODULES

# Pure-computation experiments that finish in milliseconds.
FAST_IDS = ["T1", "E2", "E6", "E10"]


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_descriptions_cover_registry(self):
        assert set(_DESCRIPTIONS) == set(EXPERIMENTS)


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "T1:" in out
        assert "finished in" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e2"]) == 0
        assert "E2:" in capsys.readouterr().out

    def test_seed_flag_accepted(self, capsys):
        assert main(["run", "E10", "--seed", "7"]) == 0
        assert "6.25" in capsys.readouterr().out

    def test_comma_separated_ids_with_jobs(self, capsys):
        assert main(["run", ",".join(FAST_IDS), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        for key in FAST_IDS:
            assert f"== {key}:" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "Traceback" not in err

    def test_unknown_id_in_list_errors(self, capsys):
        assert main(["run", "T1,E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_jobs_value_errors(self, capsys):
        assert main(["run", "E2", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_out_to_unwritable_path_errors(self, capsys):
        assert main(["run", "E2", "--out", "/nonexistent-dir/r.json"]) == 2
        err = capsys.readouterr().err
        assert "cannot write" in err
        assert "Traceback" not in err

    def test_cache_dir_naming_a_file_errors(self, tmp_path, capsys):
        blocker = tmp_path / "a-file"
        blocker.write_text("")
        assert main(["run", "E2", "--cache-dir", str(blocker)]) == 2
        err = capsys.readouterr().err
        assert "cache or output path unusable" in err
        assert "Traceback" not in err


class TestCacheFlags:
    def test_second_invocation_cached(self, capsys):
        assert main(["run", "E2"]) == 0
        assert "finished in" in capsys.readouterr().out
        assert main(["run", "E2"]) == 0
        assert "[E2 cached]" in capsys.readouterr().out

    def test_no_cache_always_recomputes(self, capsys):
        assert main(["run", "E2", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["run", "E2", "--no-cache"]) == 0
        assert "cached" not in capsys.readouterr().out

    def test_cache_dir_flag_used(self, tmp_path, capsys):
        cache_dir = tmp_path / "explicit"
        assert main(["run", "E2", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*.json"))
        assert main(["run", "E2", "--cache-dir", str(cache_dir)]) == 0
        assert "[E2 cached]" in capsys.readouterr().out

    def test_full_and_quick_cached_separately(self, capsys):
        assert main(["run", "E2"]) == 0
        capsys.readouterr()
        assert main(["run", "E2", "--full"]) == 0
        assert "finished in" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_parses_and_round_trips(self, capsys):
        assert main(["run", "E2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        result = ExperimentResult.from_dict(payload[0])
        assert result.experiment_id == "E2"
        assert result.to_dict() == payload[0]

    def test_json_multiple_in_order(self, capsys):
        assert main(["run", "T1,E2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["experiment_id"] for entry in payload] == ["T1", "E2"]

    def test_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        assert main(["run", "E2", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload[0]["experiment_id"] == "E2"
        # Progress and the file notice go to stderr; stdout keeps tables.
        captured = capsys.readouterr()
        assert str(out_file) in captured.err


class TestRunAll:
    def test_run_all_jobs_from_warm_cache(self, _isolated_cache_dir, capsys):
        # Pre-warm the per-test cache with fabricated results for every
        # experiment so `run all --jobs 2` exercises id expansion, the
        # pooled executor, and cache serving without paying for the slow
        # DES experiments.
        cache = ResultCache(_isolated_cache_dir)
        for key in DEFAULT_IDS:
            cache.put(
                ExperimentConfig(key),
                ExperimentResult(experiment_id=key, title="warm", paper_claim=""),
            )
        assert main(["run", "all", "--jobs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["experiment_id"] for entry in payload] == list(DEFAULT_IDS)


class TestTelemetry:
    def test_trace_writes_merged_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "E14", "--trace", str(trace)]) == 0
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert lines, "trace file is empty"
        assert {"flash-op", "gc"} <= {entry["event"] for entry in lines}
        # Part files are merged and removed.
        assert list(tmp_path.glob("*.part")) == []
        assert str(trace) in capsys.readouterr().err

    def test_metrics_out_writes_summaries(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        assert main(["run", "E14", "--metrics-out", str(metrics_file)]) == 0
        metrics = json.loads(metrics_file.read_text())
        assert metrics["E14"]["flash_ops"]["flash.nand"]["program"] > 0

    def test_trace_env_restored_after_run(self, tmp_path, monkeypatch):
        import os

        from repro.obs.runtime import TRACE_ENV

        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert main(["run", "E14", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert TRACE_ENV not in os.environ

    def test_untraced_results_carry_no_metrics(self, capsys):
        assert main(["run", "E14", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload[0]


class TestFormats:
    def test_markdown_format(self, capsys):
        assert main(["run", "T1", "--format", "markdown"]) == 0
        assert "|" in capsys.readouterr().out

    def test_csv_format(self, capsys):
        assert main(["run", "T1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "," in out.splitlines()[0]
