"""Tests for the survey corpus and Table 1 aggregation."""

import pytest

from repro.survey.corpus import TABLE1_COUNTS, PaperRecord, build_corpus
from repro.survey.table1 import (
    PAPER_TABLE1,
    VENUE_TOTALS,
    aggregate,
    matches_paper,
    render_table1,
    summary_percentages,
)
from repro.survey.taxonomy import (
    CATEGORY_DESCRIPTIONS,
    TOPIC_CATEGORIES,
    Category,
    classify_topic,
)


class TestTaxonomy:
    def test_four_categories(self):
        assert len(Category) == 4
        assert {c.value for c in Category} == {"Simpl", "Appr", "Res", "Orth"}

    def test_all_categories_described(self):
        assert set(CATEGORY_DESCRIPTIONS) == set(Category)

    def test_classify_known_topics(self):
        assert classify_topic("gc-interference") is Category.SIMPLIFIED
        assert classify_topic("flash-cache") is Category.APPROACH
        assert classify_topic("reliability-study") is Category.RESULTS
        assert classify_topic("flash-security") is Category.ORTHOGONAL

    def test_unknown_topic_rejected(self):
        with pytest.raises(ValueError):
            classify_topic("quantum-flash")


class TestCorpus:
    def test_size_is_104(self):
        assert len(build_corpus()) == 104

    def test_topics_consistent_with_categories(self):
        for record in build_corpus():
            assert TOPIC_CATEGORIES[record.topic] is record.category

    def test_years_in_survey_window(self):
        assert all(2016 <= r.year <= 2020 for r in build_corpus())

    def test_venues_are_surveyed_ones(self):
        assert {r.venue for r in build_corpus()} == {"FAST", "OSDI", "SOSP", "MSST"}

    def test_cited_records_present(self):
        cited = [r for r in build_corpus() if r.cited]
        titles = " ".join(r.title for r in cited)
        assert "FEMU" in titles
        assert "LinnOS" in titles
        assert "CacheLib" in titles
        assert len(cited) >= 15

    def test_titles_unique(self):
        titles = [r.title for r in build_corpus()]
        assert len(titles) == len(set(titles))


class TestTable1:
    def test_aggregation_matches_published_table(self):
        assert matches_paper()
        assert aggregate() == PAPER_TABLE1

    def test_headline_percentages(self):
        pct = summary_percentages()
        assert pct["simplified_pct"] == pytest.approx(23.0, abs=0.5)
        assert pct["affected_pct"] == pytest.approx(59.6, abs=0.5)
        assert pct["orthogonal_pct"] == pytest.approx(17.3, abs=0.5)

    def test_venue_totals_sum_to_465(self):
        assert sum(VENUE_TOTALS.values()) == 465

    def test_render_contains_totals_row(self):
        text = render_table1()
        assert "Total" in text
        assert "465" in text
        assert "24" in text and "17" in text and "45" in text and "18" in text

    def test_aggregate_rejects_foreign_venues(self):
        foreign = [PaperRecord("X", "NSDI", 2020, "flash-cache", Category.APPROACH)]
        with pytest.raises(ValueError):
            aggregate(foreign)

    def test_counts_consistency(self):
        # TABLE1_COUNTS is the same data PAPER_TABLE1 holds, keyed by enum.
        for venue, counts in TABLE1_COUNTS.items():
            for category, count in counts.items():
                assert PAPER_TABLE1[venue][category.value] == count
