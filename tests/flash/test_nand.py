"""Tests for the raw NAND array state machine."""

import pytest

from repro.flash.errors import BadBlockError, ProgramOrderError, ReadUnwrittenError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.flash.wear import WearTracker


@pytest.fixture
def nand():
    return NandArray(FlashGeometry.small())


def fill_block(nand, block):
    for page in nand.geometry.pages_of_block(block):
        nand.program(page)


class TestProgram:
    def test_sequential_program_succeeds(self, nand):
        fill_block(nand, 0)
        assert nand.is_block_full(0)

    def test_out_of_order_program_rejected(self, nand):
        with pytest.raises(ProgramOrderError):
            nand.program(1)  # page 0 not programmed yet

    def test_reprogram_rejected(self, nand):
        nand.program(0)
        with pytest.raises(ProgramOrderError):
            nand.program(0)

    def test_program_full_block_rejected(self, nand):
        fill_block(nand, 0)
        with pytest.raises(ProgramOrderError):
            nand.program_next(0)

    def test_program_next_returns_page(self, nand):
        page, latency = nand.program_next(5)
        assert page == nand.geometry.first_page_of_block(5)
        assert latency > 0
        page2, _ = nand.program_next(5)
        assert page2 == page + 1

    def test_write_offset_tracks(self, nand):
        assert nand.write_offset(0) == 0
        nand.program(0)
        nand.program(1)
        assert nand.write_offset(0) == 2
        assert nand.free_pages_in_block(0) == nand.geometry.pages_per_block - 2

    def test_counters_track_bytes(self, nand):
        nand.program(0)
        assert nand.counters.bytes_written == nand.geometry.page_size
        assert nand.counters.writes == 1


class TestRead:
    def test_read_programmed_page(self, nand):
        nand.program(0)
        _, latency = nand.read(0)
        assert latency > 0
        assert nand.counters.reads == 1

    def test_read_unwritten_rejected(self, nand):
        with pytest.raises(ReadUnwrittenError):
            nand.read(0)

    def test_read_after_erase_rejected(self, nand):
        nand.program(0)
        nand.erase(0)
        with pytest.raises(ReadUnwrittenError):
            nand.read(0)

    def test_payload_round_trip_when_storing(self):
        nand = NandArray(FlashGeometry.small(), store_data=True)
        nand.program(0, data=b"hello")
        payload, _ = nand.read(0)
        assert payload == b"hello"

    def test_payload_none_when_not_storing(self, nand):
        nand.program(0, data=b"dropped")
        payload, _ = nand.read(0)
        assert payload is None


class TestErase:
    def test_erase_resets_write_offset(self, nand):
        fill_block(nand, 0)
        nand.erase(0)
        assert nand.is_block_erased(0)
        nand.program(0)  # can program from the start again

    def test_erase_latency_exceeds_program(self, nand):
        program_latency = nand.program(0)
        erase_latency = nand.erase(0)
        assert erase_latency > program_latency

    def test_erase_clears_stored_data(self):
        nand = NandArray(FlashGeometry.small(), store_data=True)
        nand.program(0, data=b"x")
        nand.erase(0)
        nand.program(0, data=None)
        payload, _ = nand.read(0)
        assert payload is None

    def test_erase_counts_wear(self, nand):
        nand.erase(0)
        nand.erase(0)
        assert nand.wear.erase_counts[0] == 2

    def test_erased_blocks_listing(self, nand):
        nand.program(0)
        erased = nand.erased_blocks()
        assert 0 not in erased
        assert 1 in erased


class TestWearIntegration:
    def test_block_retires_at_endurance_limit(self):
        geometry = FlashGeometry.small()
        wear = WearTracker(total_blocks=geometry.total_blocks, endurance_cycles=3)
        nand = NandArray(geometry, wear=wear)
        for _ in range(3):
            nand.erase(0)
        with pytest.raises(BadBlockError):
            nand.erase(0)
        assert wear.is_bad(0)

    def test_retired_block_rejects_all_ops(self):
        geometry = FlashGeometry.small()
        wear = WearTracker(total_blocks=geometry.total_blocks, endurance_cycles=1)
        nand = NandArray(geometry, wear=wear)
        nand.erase(0)
        with pytest.raises(BadBlockError):
            nand.erase(0)
        with pytest.raises(BadBlockError):
            nand.program(0)
        with pytest.raises(BadBlockError):
            nand.read(0)

    def test_mismatched_wear_tracker_rejected(self):
        geometry = FlashGeometry.small()
        with pytest.raises(ValueError):
            NandArray(geometry, wear=WearTracker(total_blocks=7))


class TestCopyPage:
    def test_copy_moves_data_without_host_read(self):
        nand = NandArray(FlashGeometry.small(), store_data=True)
        nand.program(0, data=b"payload")
        dst = nand.geometry.first_page_of_block(1)
        nand.copy_page(0, dst)
        payload, _ = nand.read(dst)
        assert payload == b"payload"
        assert nand.counters.reads == 1  # only the verification read above
        assert nand.counters.copies == 1

    def test_copy_counts_physical_write(self):
        nand = NandArray(FlashGeometry.small())
        nand.program(0)
        before = nand.counters.bytes_written
        nand.copy_page(0, nand.geometry.first_page_of_block(1))
        assert nand.counters.bytes_written == before + nand.geometry.page_size

    def test_copy_respects_program_order(self):
        nand = NandArray(FlashGeometry.small())
        nand.program(0)
        bad_dst = nand.geometry.first_page_of_block(1) + 1
        with pytest.raises(ProgramOrderError):
            nand.copy_page(0, bad_dst)

    def test_copy_from_unwritten_rejected(self):
        nand = NandArray(FlashGeometry.small())
        with pytest.raises(ReadUnwrittenError):
            nand.copy_page(0, nand.geometry.first_page_of_block(1))


class TestReadDisturb:
    def test_reads_counted_per_block(self):
        nand = NandArray(FlashGeometry.small(), read_disturb_limit=100)
        nand.program(0)
        for _ in range(5):
            nand.read(0)
        assert nand.reads_since_erase(0) == 5
        assert nand.disturb_pressure(0) == pytest.approx(0.05)

    def test_erase_resets_disturb_counter(self):
        nand = NandArray(FlashGeometry.small(), read_disturb_limit=100)
        nand.program(0)
        nand.read(0)
        nand.erase(0)
        assert nand.reads_since_erase(0) == 0

    def test_disturbed_blocks_listing(self):
        nand = NandArray(FlashGeometry.small(), read_disturb_limit=10)
        nand.program(0)
        for _ in range(9):
            nand.read(0)
        assert nand.disturbed_blocks(threshold=0.8) == [0]
        assert nand.disturbed_blocks(threshold=1.0) == []

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            NandArray(FlashGeometry.small(), read_disturb_limit=0)
