"""Property tests for endurance failure: seeded schedules, hard limits.

Satellite of the fault-injection PR: the wear model's failure behavior
must be reproducible (same seed => same grown-bad-block schedule) and,
without randomness, exactly deterministic at the rated endurance limit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.flash.wear import WearTracker

BLOCKS = 8


def failure_schedule(tracker: WearTracker, erases: list[int]) -> list[tuple[int, int]]:
    """Replay an erase script; returns (step, block) for each failure."""
    failures = []
    for step, block in enumerate(erases):
        if tracker.is_bad(block):
            continue
        if not tracker.record_erase(block):
            failures.append((step, block))
    return failures


erase_scripts = st.lists(st.integers(0, BLOCKS - 1), min_size=20, max_size=300)


class TestSeededSchedule:
    @given(seed=st.integers(0, 2**31 - 1), erases=erase_scripts)
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_grown_bad_schedule(self, seed, erases):
        trackers = [
            WearTracker(
                BLOCKS,
                endurance_cycles=3,
                failure_probability=0.5,
                failure_rng=np.random.default_rng(seed),
            )
            for _ in range(2)
        ]
        schedules = [failure_schedule(t, erases) for t in trackers]
        assert schedules[0] == schedules[1]
        assert trackers[0].bad_blocks == trackers[1].bad_blocks

    @given(seed=st.integers(0, 2**31 - 1), erases=erase_scripts)
    @settings(max_examples=20, deadline=None)
    def test_injector_erase_faults_replay_identically(self, seed, erases):
        plan = FaultPlan(seed=seed, erase_fail_prob=0.2)
        # Two injectors built from one plan make identical erase calls.
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert [a.on_erase(blk) for blk in erases] == [
            b.on_erase(blk) for blk in erases
        ]


class TestDeterministicLimit:
    @given(limit=st.integers(1, 50), block=st.integers(0, BLOCKS - 1))
    @settings(max_examples=30, deadline=None)
    def test_no_rng_fails_exactly_at_limit(self, limit, block):
        tracker = WearTracker(BLOCKS, endurance_cycles=limit)
        # Every erase within the rated budget succeeds...
        for _ in range(limit):
            assert tracker.record_erase(block)
            assert not tracker.is_bad(block)
        # ...and the first erase past it fails, retiring the block.
        assert not tracker.record_erase(block)
        assert tracker.is_bad(block)
        assert tracker.bad_mask[block]

    @given(limit=st.integers(1, 50))
    @settings(max_examples=15, deadline=None)
    def test_zero_failure_probability_matches_no_rng(self, limit):
        with_rng = WearTracker(
            BLOCKS,
            endurance_cycles=limit,
            failure_probability=0.0,
            failure_rng=np.random.default_rng(0),
        )
        without = WearTracker(BLOCKS, endurance_cycles=limit)
        script = [0] * (limit + 1)
        assert failure_schedule(with_rng, script) == failure_schedule(without, script)
        assert failure_schedule(with_rng, script) == []  # block already bad
        # Both retired the block on the same (first-past-budget) erase.
        assert with_rng.bad_blocks == without.bad_blocks == frozenset({0})

    def test_disabled_endurance_never_fails(self):
        tracker = WearTracker(BLOCKS, endurance_cycles=0)
        for _ in range(10_000):
            assert tracker.record_erase(0)
        assert not tracker.is_bad(0)
