"""Tests for flash and zoned geometry arithmetic."""

import pytest

from repro.flash.cells import CellType
from repro.flash.geometry import GIB, KIB, MIB, FlashGeometry, ZonedGeometry


class TestFlashGeometry:
    def test_derived_sizes(self):
        g = FlashGeometry(
            page_size=4 * KIB,
            pages_per_block=64,
            blocks_per_plane=16,
            planes_per_channel=2,
            channels=4,
        )
        assert g.total_planes == 8
        assert g.total_blocks == 128
        assert g.total_pages == 8192
        assert g.block_size == 256 * KIB
        assert g.capacity_bytes == 32 * MIB

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            FlashGeometry(channels=0)
        with pytest.raises(ValueError):
            FlashGeometry(page_size=0)

    def test_page_block_round_trip(self):
        g = FlashGeometry.small()
        for page in (0, 1, g.pages_per_block - 1, g.pages_per_block, g.total_pages - 1):
            block = g.block_of_page(page)
            offset = g.page_offset_in_block(page)
            assert g.first_page_of_block(block) + offset == page

    def test_pages_of_block_covers_block(self):
        g = FlashGeometry.small()
        pages = list(g.pages_of_block(3))
        assert len(pages) == g.pages_per_block
        assert all(g.block_of_page(p) == 3 for p in pages)

    def test_blocks_stripe_across_planes(self):
        g = FlashGeometry.small()
        planes = [g.plane_of_block(b) for b in range(g.total_planes * 2)]
        assert planes[: g.total_planes] == list(range(g.total_planes))
        assert planes[g.total_planes :] == list(range(g.total_planes))

    def test_channel_groups_planes(self):
        g = FlashGeometry(planes_per_channel=2, channels=4)
        for block in range(g.total_blocks):
            chan = g.channel_of_block(block)
            assert 0 <= chan < g.channels
            assert chan == g.plane_of_block(block) // g.planes_per_channel

    def test_bounds_checks(self):
        g = FlashGeometry.small()
        with pytest.raises(IndexError):
            g.check_page(g.total_pages)
        with pytest.raises(IndexError):
            g.check_page(-1)
        with pytest.raises(IndexError):
            g.check_block(g.total_blocks)

    def test_datacenter_geometry_has_16mib_blocks(self):
        g = FlashGeometry.datacenter_1tb()
        assert g.block_size == 16 * MIB
        assert g.capacity_bytes >= GIB  # full-scale, used for arithmetic only


class TestZonedGeometry:
    def test_zone_counts(self):
        zg = ZonedGeometry.small()
        assert zg.zone_count * zg.blocks_per_zone == zg.flash.total_blocks
        assert zg.pages_per_zone == zg.blocks_per_zone * zg.flash.pages_per_block
        assert zg.zone_size_bytes == zg.blocks_per_zone * zg.flash.block_size

    def test_indivisible_zone_width_rejected(self):
        with pytest.raises(ValueError):
            ZonedGeometry(flash=FlashGeometry.small(), blocks_per_zone=7)

    def test_blocks_of_zone_partition(self):
        zg = ZonedGeometry.small()
        seen = set()
        for z in range(zg.zone_count):
            blocks = set(zg.blocks_of_zone(z))
            assert not (blocks & seen)
            seen |= blocks
        assert seen == set(range(zg.flash.total_blocks))

    def test_zone_bounds(self):
        zg = ZonedGeometry.small()
        with pytest.raises(IndexError):
            zg.blocks_of_zone(zg.zone_count)

    def test_open_limit_defaults_to_active(self):
        zg = ZonedGeometry(flash=FlashGeometry.small(), blocks_per_zone=2, max_active_zones=6)
        assert zg.open_limit == 6

    def test_open_limit_override(self):
        zg = ZonedGeometry(
            flash=FlashGeometry.small(),
            blocks_per_zone=2,
            max_active_zones=8,
            max_open_zones=4,
        )
        assert zg.open_limit == 4

    def test_bench_matches_paper_reference_device_shape(self):
        # Paper [10]: 14 active zones on the evaluated device.
        assert ZonedGeometry.bench().max_active_zones == 14


class TestCellTypes:
    def test_bits_ladder(self):
        bits = [c.bits_per_cell for c in CellType]
        assert bits == [1, 2, 3, 4, 5]

    def test_endurance_decreases_with_density(self):
        endurance = [c.endurance_cycles for c in CellType]
        assert endurance == sorted(endurance, reverse=True)

    def test_latencies_increase_with_density(self):
        programs = [c.characteristics.program_us for c in CellType]
        assert programs == sorted(programs)

    def test_tlc_erase_program_ratio_near_six(self):
        # Paper §2.1: erasing takes ~6x longer than programming for TLC.
        ratio = CellType.TLC.characteristics.erase_program_ratio
        assert 5.5 <= ratio <= 7.0
