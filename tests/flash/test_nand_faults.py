"""NAND under an armed FaultInjector: burns, retirement, ladders, atomicity."""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.flash.errors import (
    BadBlockError,
    ProgramFaultError,
    UncorrectableReadError,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray


def make_nand(plan: FaultPlan | None = None, **kwargs) -> NandArray:
    faults = FaultInjector(plan) if plan is not None else None
    return NandArray(FlashGeometry.small(), faults=faults, **kwargs)


def nand_state(nand: NandArray) -> dict:
    return {
        "write_offsets": nand.write_offsets.tolist(),
        "counters": dataclasses.asdict(nand.counters),
        "bad": sorted(nand.wear.bad_blocks),
    }


class TestDisarmed:
    def test_disarmed_injector_is_dropped(self):
        nand = make_nand(FaultPlan())  # nothing armed
        assert nand.faults is None

    def test_armed_injector_is_kept_and_bound(self):
        nand = make_nand(FaultPlan(program_fail_prob=0.5))
        assert nand.faults is not None
        assert nand.faults.tracer is nand.tracer


class TestScalarProgramFault:
    def test_fault_burns_the_page(self):
        from repro.flash.errors import ProgramOrderError

        nand = make_nand(FaultPlan(program_fail_prob=1.0))
        with pytest.raises(ProgramFaultError):
            nand.program(0)
        # The attempt consumed the page: offset advanced, data bad. The
        # burned page can never be programmed again.
        assert nand.write_offset(0) == 1
        with pytest.raises(ProgramOrderError):
            nand.program(0)

    def test_burned_page_is_not_readable_data(self):
        nand = make_nand(FaultPlan(program_fail_prob=1.0), store_data=True)
        with pytest.raises(ProgramFaultError):
            nand.program(0, b"payload")
        # Offset advanced over the burn but the payload was never stored.
        assert nand.read(0)[0] is None


class TestEraseFault:
    def test_injected_erase_failure_retires_block(self):
        nand = make_nand(FaultPlan(erase_fail_prob=1.0))
        with pytest.raises(BadBlockError):
            nand.erase(0)
        assert nand.wear.is_bad(0)
        with pytest.raises(BadBlockError):
            nand.program(0)

    def test_scheduled_grown_bad_block(self):
        nand = make_nand(FaultPlan(grown_bad_blocks=((2, 5),)))
        nand.erase(5)  # op 1: before the schedule point, fine
        nand.program(nand.geometry.first_page_of_block(0))  # op 2 reached
        with pytest.raises(BadBlockError):
            nand.erase(5)
        assert nand.wear.is_bad(5)


class TestReadFaults:
    def test_retry_ladder_latency_added(self):
        plan = FaultPlan(
            read_error_prob=1.0, retry_success_prob=1.0,
            retry_ladder_us=(40.0,),
        )
        clean = make_nand()
        clean.program(0)
        _, base = clean.read(0)
        faulty = make_nand(plan)
        # Programs tick the injector too; keep the plan read-only.
        faulty.program(0)
        _, latency = faulty.read(0)
        assert latency == pytest.approx(base + 40.0)

    def test_uncorrectable_read_raises(self):
        plan = FaultPlan(read_error_prob=1.0, retry_success_prob=0.0)
        nand = make_nand(plan)
        nand.program(0)
        with pytest.raises(UncorrectableReadError):
            nand.read(0)

    def test_internal_copy_sense_never_injected(self):
        plan = FaultPlan(read_error_prob=1.0, retry_success_prob=0.0)
        nand = make_nand(plan)
        nand.program(0)
        # A GC/copy sense of the same page must not walk the ladder: a
        # device that loses data while relocating it corrupts mappings.
        nand.sense_for_copy(0)


class TestBatchAtomicity:
    """A failed batch leaves the array exactly as it was (satellite 4)."""

    def test_failed_program_batch_mutates_nothing(self):
        nand = make_nand(FaultPlan(program_fail_prob=1.0))
        before = nand_state(nand)
        pages = np.arange(4, dtype=np.int64)
        with pytest.raises(ProgramFaultError):
            nand.program_batch(pages)
        after = nand_state(nand)
        # The op clock advanced (time passed) but no flash state did.
        assert after == before

    def test_failed_program_run_mutates_nothing(self):
        nand = make_nand(FaultPlan(program_fail_prob=1.0))
        before = nand_state(nand)
        with pytest.raises(ProgramFaultError):
            nand.program_run(0, 4)
        assert nand_state(nand) == before

    def test_successful_batch_after_transient_failure(self):
        # prob < 1 with a fixed seed: retrying the batch eventually lands,
        # and the landed batch is complete (no partial writes ever).
        nand = make_nand(FaultPlan(seed=7, program_fail_prob=0.3))
        pages = np.arange(8, dtype=np.int64)
        for _ in range(50):
            try:
                nand.program_batch(pages)
                break
            except ProgramFaultError:
                assert nand.write_offset(0) == 0
        else:
            pytest.fail("batch never succeeded at prob=0.3")
        assert nand.write_offset(0) == 8

    def test_uncorrectable_batch_read_decided_pre_mutation(self):
        plan = FaultPlan(read_error_prob=1.0, retry_success_prob=0.0)
        nand = make_nand(plan)
        nand.program_run(0, 4)
        disturb_before = nand.reads_since_erase(0)
        with pytest.raises(UncorrectableReadError):
            nand.sense_batch(np.arange(4, dtype=np.int64))
        # Decided before any disturb accounting: the array is untouched.
        assert nand.reads_since_erase(0) == disturb_before
