"""Batched NandArray entry points: parity with scalar ops and error fidelity."""

import dataclasses

import numpy as np
import pytest

from repro.flash.errors import ProgramOrderError, ReadUnwrittenError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray


def make_nand() -> NandArray:
    return NandArray(FlashGeometry.small())


def nand_state(nand: NandArray) -> dict:
    return {
        "write_offsets": [
            nand.write_offset(b) for b in range(nand.geometry.total_blocks)
        ],
        "erase_counts": nand.wear.erase_counts.tolist(),
        "counters": dataclasses.asdict(nand.counters),
        "erased": nand.erased_blocks(),
    }


class TestProgramBatch:
    def test_matches_scalar_program_loop(self):
        ppb = FlashGeometry.small().pages_per_block
        pages = list(range(0, ppb)) + list(range(5 * ppb, 5 * ppb + 7))
        scalar, batched = make_nand(), make_nand()
        for page in pages:
            scalar.program(page)
        batched.program_batch(np.asarray(pages, dtype=np.int64))
        assert nand_state(scalar) == nand_state(batched)

    def test_aggregate_latency_equals_scalar_sum(self):
        scalar, batched = make_nand(), make_nand()
        total = sum(scalar.program(page) for page in range(10))
        assert batched.program_batch(np.arange(10, dtype=np.int64)) == total

    def test_permuted_contiguous_batch_accepted(self):
        """Within one batch, per-block pages may arrive in any order."""
        nand = make_nand()
        nand.program_batch(np.array([2, 0, 1], dtype=np.int64))
        assert nand.write_offset(0) == 3

    def test_duplicate_page_in_batch_rejected(self):
        nand = make_nand()
        with pytest.raises(ProgramOrderError):
            nand.program_batch(np.array([0, 0, 1], dtype=np.int64))

    def test_gap_within_batch_rejected(self):
        nand = make_nand()
        with pytest.raises(ProgramOrderError):
            nand.program_batch(np.array([0, 2], dtype=np.int64))

    def test_gap_after_write_offset_rejected(self):
        nand = make_nand()
        nand.program(0)
        with pytest.raises(ProgramOrderError):
            nand.program_batch(np.array([3], dtype=np.int64))

    def test_program_run_matches_program_next(self):
        scalar, batched = make_nand(), make_nand()
        for _ in range(5):
            scalar.program_next(3)
        first, _ = batched.program_run(3, 5)
        assert first == 3 * scalar.geometry.pages_per_block
        assert nand_state(scalar) == nand_state(batched)


class TestSenseBatch:
    def test_matches_scalar_read_loop(self):
        scalar, batched = make_nand(), make_nand()
        for nand in (scalar, batched):
            nand.program_batch(np.arange(16, dtype=np.int64))
        pages = [0, 3, 3, 15, 7]
        total = sum(scalar.read(page)[1] for page in pages)
        assert batched.sense_batch(np.asarray(pages, dtype=np.int64)) == total
        assert nand_state(scalar) == nand_state(batched)

    def test_unwritten_page_rejected(self):
        nand = make_nand()
        nand.program(0)
        with pytest.raises(ReadUnwrittenError):
            nand.sense_batch(np.array([0, 1], dtype=np.int64))

    @pytest.mark.parametrize("n", [10, 16, 17, 24])
    def test_scalar_and_vector_tiers_match_across_threshold(self, n):
        """Batches on both sides of the n<=16 fast-path split agree."""
        scalar, batched = make_nand(), make_nand()
        for nand in (scalar, batched):
            nand.program_batch(np.arange(32, dtype=np.int64))
        pages = [(7 * i) % 32 for i in range(n)]
        total = sum(scalar.read(page)[1] for page in pages)
        assert batched.sense_batch(np.asarray(pages, dtype=np.int64)) == total
        assert nand_state(scalar) == nand_state(batched)

    @pytest.mark.parametrize("n", [4, 24])
    def test_failed_batch_mutates_nothing(self, n):
        """Both tiers validate every page before any disturb accounting."""
        nand = make_nand()
        nand.program_batch(np.arange(n, dtype=np.int64))
        before = nand_state(nand)
        pages = list(range(n - 1)) + [nand.geometry.total_pages - 1]  # last unwritten
        with pytest.raises(ReadUnwrittenError):
            nand.sense_batch(np.asarray(pages, dtype=np.int64))
        assert nand_state(nand) == before

    def test_sense_for_copy_batch_is_silent_but_disturbs(self):
        """Copy senses publish no events but still count toward read disturb."""
        scalar, batched = make_nand(), make_nand()
        for nand in (scalar, batched):
            nand.program_batch(np.arange(8, dtype=np.int64))
        before = dataclasses.asdict(batched.counters)
        for page in (0, 1, 2):
            scalar.sense_for_copy(page)
        batched.sense_for_copy_batch(np.array([0, 1, 2], dtype=np.int64))
        assert dataclasses.asdict(batched.counters) == before
        assert nand_state(scalar) == nand_state(batched)

    def test_sense_for_copy_batch_rejects_unwritten(self):
        nand = make_nand()
        with pytest.raises(ReadUnwrittenError):
            nand.sense_for_copy_batch(np.array([0], dtype=np.int64))


class TestCopyBatch:
    def test_matches_scalar_copy_loop(self):
        ppb = FlashGeometry.small().pages_per_block
        scalar, batched = make_nand(), make_nand()
        for nand in (scalar, batched):
            nand.program_batch(np.arange(6, dtype=np.int64))
        sources = [0, 2, 4]
        destinations = [ppb, ppb + 1, ppb + 2]
        for src, dst in zip(sources, destinations):
            scalar.copy_page(src, dst)
        batched.copy_batch(
            np.asarray(sources, dtype=np.int64),
            np.asarray(destinations, dtype=np.int64),
        )
        assert nand_state(scalar) == nand_state(batched)


class TestBlockScans:
    def test_erased_blocks_matches_bruteforce(self):
        nand = make_nand()
        nand.program_batch(np.arange(40, dtype=np.int64))
        nand.erase(0)
        expected = [
            b for b in range(nand.geometry.total_blocks) if nand.is_block_erased(b)
        ]
        assert nand.erased_blocks() == expected

    def test_disturbed_blocks_matches_scalar_reads(self):
        scalar, batched = make_nand(), make_nand()
        for nand in (scalar, batched):
            nand.program_batch(np.arange(64, dtype=np.int64))
        pages = np.zeros(50, dtype=np.int64)  # hammer block 0
        for page in pages.tolist():
            scalar.read(page)
        batched.sense_batch(pages)
        assert scalar.disturbed_blocks(0.0001) == batched.disturbed_blocks(0.0001)
