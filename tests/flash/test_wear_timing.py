"""Tests for wear tracking, timing model, and service model."""

import numpy as np
import pytest

from repro.flash.cells import CellType
from repro.flash.geometry import FlashGeometry
from repro.flash.ops import FlashOp, OpKind, total_latency
from repro.flash.service import FlashServiceModel
from repro.flash.timing import TimingModel
from repro.flash.wear import WearTracker
from repro.sim.engine import Engine


class TestWearTracker:
    def test_counts_start_zero(self):
        w = WearTracker(total_blocks=4)
        assert w.stats().max_erases == 0

    def test_record_erase_increments(self):
        w = WearTracker(total_blocks=4)
        assert w.record_erase(2)
        assert w.erase_counts[2] == 1

    def test_endurance_disabled_never_fails(self):
        w = WearTracker(total_blocks=2, endurance_cycles=0)
        for _ in range(1000):
            assert w.record_erase(0)

    def test_deterministic_failure_at_limit(self):
        w = WearTracker(total_blocks=2, endurance_cycles=5)
        for _ in range(5):
            assert w.record_erase(0)
        assert not w.record_erase(0)
        assert w.is_bad(0)

    def test_probabilistic_failure_with_rng(self):
        w = WearTracker(
            total_blocks=1,
            endurance_cycles=1,
            failure_probability=0.5,
            failure_rng=np.random.default_rng(0),
        )
        w.record_erase(0)
        # Past limit: eventually fails, but not necessarily first time.
        survived = 0
        while not w.is_bad(0) and survived < 1000:
            w.record_erase(0)
            survived += 1
        assert w.is_bad(0)
        assert survived < 100  # p=0.5 per erase

    def test_erase_retired_block_rejected(self):
        w = WearTracker(total_blocks=1, endurance_cycles=1)
        w.record_erase(0)
        w.record_erase(0)  # fails, retires
        with pytest.raises(ValueError):
            w.record_erase(0)

    def test_remaining_life(self):
        w = WearTracker(total_blocks=1, endurance_cycles=10)
        w.record_erase(0)
        assert w.remaining_life(0) == 9

    def test_stats_exclude_bad_blocks(self):
        w = WearTracker(total_blocks=3, endurance_cycles=1)
        w.record_erase(0)
        w.record_erase(0)  # retire block 0
        stats = w.stats()
        assert stats.bad_blocks == 1
        assert stats.max_erases == 0  # blocks 1 and 2 untouched

    def test_for_cell_uses_endurance(self):
        w = WearTracker.for_cell(4, CellType.TLC)
        assert w.endurance_cycles == CellType.TLC.endurance_cycles

    def test_imbalance_zero_when_level(self):
        w = WearTracker(total_blocks=4)
        for b in range(4):
            w.record_erase(b)
        assert w.stats().imbalance == pytest.approx(0.0)


class TestTimingModel:
    def test_defaults_from_cell_type(self):
        t = TimingModel.for_cell(CellType.TLC)
        chars = CellType.TLC.characteristics
        assert t.read_us == chars.read_us
        assert t.program_us == chars.program_us
        assert t.erase_us == chars.erase_us

    def test_overrides_respected(self):
        t = TimingModel(cell_type=CellType.TLC, read_us=1.0)
        assert t.read_us == 1.0
        assert t.program_us == CellType.TLC.characteristics.program_us

    def test_transfer_time_scales_with_size(self):
        t = TimingModel()
        assert t.transfer_us(8192) == pytest.approx(2 * t.transfer_us(4096))

    def test_transfer_rate_sanity(self):
        t = TimingModel(channel_mb_per_s=800.0)
        # 4 KiB at 800 MB/s ~ 4.9 us.
        assert t.transfer_us(4096) == pytest.approx(4.88, rel=0.01)

    def test_totals_include_transfer(self):
        t = TimingModel()
        assert t.read_total_us(4096) > t.read_us
        assert t.program_total_us(4096) > t.program_us

    def test_invalid_channel_rate_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(channel_mb_per_s=-1)


class TestFlashOps:
    def test_total_latency_sums(self):
        ops = [
            FlashOp(OpKind.READ, 0, 0, 10.0),
            FlashOp(OpKind.ERASE, 0, None, 100.0),
        ]
        assert total_latency(ops) == 110.0

    def test_background_classification(self):
        assert FlashOp(OpKind.ERASE, 0, None, 1.0).is_background
        assert FlashOp(OpKind.COPY, 0, 0, 1.0).is_background
        assert not FlashOp(OpKind.READ, 0, 0, 1.0).is_background


class TestFlashServiceModel:
    def test_single_read_takes_array_plus_transfer(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g)
        op = FlashOp(OpKind.READ, 0, 0, 0.0)
        p = eng.process(svc.execute(op))
        latency = eng.run(until=p)
        expected = svc.timing.read_us + svc.timing.transfer_us(g.page_size)
        assert latency == pytest.approx(expected)

    def test_same_plane_ops_serialize(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g)
        block = 0
        same_plane = g.total_planes  # block on the same plane as block 0
        assert g.plane_of_block(block) == g.plane_of_block(same_plane)
        p1 = eng.process(svc.execute(FlashOp(OpKind.ERASE, block, None, 0.0)))
        p2 = eng.process(svc.execute(FlashOp(OpKind.READ, same_plane, 0, 0.0)))
        eng.run(until=p2)
        read_latency = p2.value
        # The read queued behind the full erase on its plane.
        assert read_latency >= svc.timing.erase_us

    def test_different_planes_run_parallel(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g)
        p1 = eng.process(svc.execute(FlashOp(OpKind.ERASE, 0, None, 0.0)))
        p2 = eng.process(svc.execute(FlashOp(OpKind.ERASE, 1, None, 0.0)))
        eng.run()
        assert p1.value == pytest.approx(svc.timing.erase_us)
        assert p2.value == pytest.approx(svc.timing.erase_us)

    def test_channel_serializes_transfers(self):
        eng = Engine()
        g = FlashGeometry(planes_per_channel=2, channels=1, blocks_per_plane=4)
        svc = FlashServiceModel(eng, g)
        # Two reads on different planes, same channel: array time overlaps,
        # transfers serialize.
        p1 = eng.process(svc.execute(FlashOp(OpKind.READ, 0, 0, 0.0)))
        p2 = eng.process(svc.execute(FlashOp(OpKind.READ, 1, 0, 0.0)))
        eng.run()
        transfer = svc.timing.transfer_us(g.page_size)
        slower = max(p1.value, p2.value)
        assert slower == pytest.approx(svc.timing.read_us + 2 * transfer)

    def test_copy_skips_channel(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g)
        op = FlashOp(OpKind.COPY, 0, 0, 0.0, uses_channel=False)
        p = eng.process(svc.execute(op))
        latency = eng.run(until=p)
        assert latency == pytest.approx(svc.timing.read_us + svc.timing.program_us)

    def test_read_priority_overtakes_background(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g, prioritize_reads=True)
        same_plane = g.total_planes
        # Occupy the plane, then queue an erase and a read; read must win.
        running = eng.process(svc.execute(FlashOp(OpKind.ERASE, 0, None, 0.0)))
        erase2 = eng.process(svc.execute(FlashOp(OpKind.ERASE, same_plane, None, 0.0)))
        read = eng.process(svc.execute(FlashOp(OpKind.READ, same_plane, 0, 0.0)))
        eng.run()
        # read completes before the second erase despite arriving later.
        assert read.value < erase2.value

    def test_execute_all_serializes_batch(self):
        eng = Engine()
        g = FlashGeometry.small()
        svc = FlashServiceModel(eng, g)
        ops = [FlashOp(OpKind.READ, 0, 0, 0.0), FlashOp(OpKind.READ, 0, 1, 0.0)]
        p = eng.process(svc.execute_all(ops))
        elapsed = eng.run(until=p)
        single = svc.timing.read_us + svc.timing.transfer_us(g.page_size)
        assert elapsed == pytest.approx(2 * single)
