"""Tests for the page map, including hypothesis invariant checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.ftl.mapping import UNMAPPED, PageMap


@pytest.fixture
def pmap():
    return PageMap(FlashGeometry.small(), logical_pages=4096)


class TestBasics:
    def test_starts_unmapped(self, pmap):
        assert pmap.lookup(0) == UNMAPPED
        assert not pmap.is_mapped(0)
        assert pmap.mapped_pages == 0

    def test_map_and_lookup(self, pmap):
        pmap.map(10, 100)
        assert pmap.lookup(10) == 100
        assert pmap.owner_of(100) == 10
        assert pmap.is_valid(100)
        assert pmap.mapped_pages == 1

    def test_remap_invalidates_old_physical(self, pmap):
        pmap.map(10, 100)
        old = pmap.map(10, 200)
        assert old == 100
        assert not pmap.is_valid(100)
        assert pmap.lookup(10) == 200
        assert pmap.mapped_pages == 1

    def test_double_map_physical_rejected(self, pmap):
        pmap.map(1, 100)
        with pytest.raises(ValueError):
            pmap.map(2, 100)

    def test_unmap_returns_freed_page(self, pmap):
        pmap.map(5, 50)
        assert pmap.unmap(5) == 50
        assert pmap.lookup(5) == UNMAPPED
        assert not pmap.is_valid(50)

    def test_unmap_unmapped_is_noop(self, pmap):
        assert pmap.unmap(5) == UNMAPPED

    def test_bounds_checks(self, pmap):
        with pytest.raises(IndexError):
            pmap.lookup(4096)
        with pytest.raises(IndexError):
            pmap.map(0, 10**9)

    def test_oversized_export_rejected(self):
        g = FlashGeometry.small()
        with pytest.raises(ValueError):
            PageMap(g, logical_pages=g.total_pages + 1)


class TestValidCounts:
    def test_counts_track_block_membership(self, pmap):
        g = pmap.geometry
        pmap.map(0, 0)
        pmap.map(1, 1)
        pmap.map(2, g.pages_per_block)  # second block
        assert pmap.block_valid_count(0) == 2
        assert pmap.block_valid_count(1) == 1

    def test_valid_pages_listing(self, pmap):
        pmap.map(0, 0)
        pmap.map(1, 2)
        assert pmap.valid_pages_in_block(0) == [0, 2]

    def test_remap_decrements_old_block(self, pmap):
        g = pmap.geometry
        pmap.map(0, 0)
        pmap.map(0, g.pages_per_block)
        assert pmap.block_valid_count(0) == 0
        assert pmap.block_valid_count(1) == 1


class TestRelocate:
    def test_relocate_moves_binding(self, pmap):
        pmap.map(7, 70)
        lpn = pmap.relocate(70, 700)
        assert lpn == 7
        assert pmap.lookup(7) == 700
        assert not pmap.is_valid(70)
        assert pmap.is_valid(700)

    def test_relocate_invalid_source_rejected(self, pmap):
        with pytest.raises(ValueError):
            pmap.relocate(70, 700)

    def test_relocate_to_mapped_target_rejected(self, pmap):
        pmap.map(1, 10)
        pmap.map(2, 20)
        with pytest.raises(ValueError):
            pmap.relocate(10, 20)


class TestDram:
    def test_dram_bytes_four_per_entry(self, pmap):
        assert pmap.dram_bytes() == 4096 * 4
        assert pmap.dram_bytes(bytes_per_entry=8) == 4096 * 8


# -- Property-based: the maps stay mutual inverses under arbitrary ops -----

_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap", "relocate"]),
        st.integers(min_value=0, max_value=255),  # lpn
        st.integers(min_value=0, max_value=1023),  # ppn-ish
    ),
    max_size=200,
)


@settings(max_examples=50, deadline=None)
@given(_ACTIONS)
def test_map_invariants_under_random_operations(actions):
    g = FlashGeometry.small()
    pmap = PageMap(g, logical_pages=256)
    used_physical: set[int] = set()
    next_free = 0

    for action, lpn, _arg in actions:
        if action == "map":
            if next_free >= g.total_pages:
                continue
            ppn = next_free
            next_free += 1
            pmap.map(lpn, ppn)
            used_physical.add(ppn)
        elif action == "unmap":
            pmap.unmap(lpn)
        elif action == "relocate":
            src = pmap.lookup(lpn)
            if src == UNMAPPED or next_free >= g.total_pages:
                continue
            dst = next_free
            next_free += 1
            pmap.relocate(src, dst)

    # Invariant 1: forward and reverse maps are mutual inverses.
    mapped = 0
    for lpn in range(256):
        ppn = pmap.lookup(lpn)
        if ppn != UNMAPPED:
            mapped += 1
            assert pmap.owner_of(ppn) == lpn
    assert mapped == pmap.mapped_pages

    # Invariant 2: valid counts equal actual valid pages per block.
    for block in range(g.total_blocks):
        actual = len(pmap.valid_pages_in_block(block))
        assert actual == pmap.block_valid_count(block)

    # Invariant 3: total valid pages equals mapped lpns.
    assert int(pmap.valid_counts.sum()) == pmap.mapped_pages
