"""Property tests: batched FTL writes are state-identical to scalar writes.

``write_pages`` promises to be semantically equivalent to a scalar
``write`` loop -- same mapping tables, GC victim sequence, counters, and
trace aggregates -- while doing the flash work in vectorized runs. These
tests drive both paths with identical workloads (including duplicate
LPNs, which exercise in-batch invalidation) across every GC policy and
compare the complete observable state.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.ftl.ftl import ConventionalFTL, FTLConfig


def tiny_geometry():
    # 16 blocks of 8 pages: small enough for hypothesis, large enough
    # that random overwrites trigger foreground GC constantly.
    return FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )


def make_ftl(policy: str) -> ConventionalFTL:
    return ConventionalFTL(
        tiny_geometry(),
        FTLConfig(
            op_ratio=0.2, gc_policy=policy, gc_low_watermark=1, gc_high_watermark=2
        ),
    )


LOGICAL = make_ftl("greedy").logical_pages


def full_state(ftl: ConventionalFTL) -> dict:
    """Every observable the batched path promises to keep identical."""
    return {
        "l2p": ftl.map.l2p.tolist(),
        "p2l": ftl.map.p2l.tolist(),
        "valid_counts": ftl.map.valid_counts.tolist(),
        "mapped_pages": ftl.map.mapped_pages,
        "clock": ftl._clock,
        "free": list(ftl._free),
        "sealed": sorted(ftl._sealed),
        "seal_times": dict(ftl._seal_times),
        "seal_time_arr": ftl._seal_time_arr.tolist(),
        "active": dict(ftl._active),
        "gc_active": dict(ftl._gc_active),
        "plane_cursor": ftl._plane_cursor,
        "gc_cursor": ftl._gc_cursor,
        "stats": dataclasses.asdict(ftl.stats),
        "write_offsets": [
            ftl.nand.write_offset(b) for b in range(ftl.geometry.total_blocks)
        ],
        "erase_counts": ftl.nand.wear.erase_counts.tolist(),
        # Counter totals derive from published trace events, so equality
        # here proves the batched aggregate events carry the same totals
        # as the scalar per-page stream.
        "nand_counters": dataclasses.asdict(ftl.nand.counters),
    }


lpn_batches = st.lists(
    st.lists(st.integers(min_value=0, max_value=LOGICAL - 1), min_size=1, max_size=60),
    min_size=1,
    max_size=6,
)


class TestWritePagesParity:
    @settings(max_examples=30, deadline=None)
    @given(
        policy=st.sampled_from(["greedy", "cost-benefit", "fifo"]),
        batches=lpn_batches,
    )
    def test_batched_equals_scalar(self, policy, batches):
        scalar = make_ftl(policy)
        batched = make_ftl(policy)
        for lpns in batches:
            for lpn in lpns:
                scalar.write(lpn)
            batched.write_pages(np.asarray(lpns, dtype=np.int64))
        assert full_state(scalar) == full_state(batched)
        scalar.check_invariants()
        batched.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        lpns=st.lists(
            st.integers(min_value=0, max_value=LOGICAL - 1), min_size=2, max_size=120
        ),
        data=st.data(),
    )
    def test_chunking_is_invariant(self, lpns, data):
        """Splitting one batch into arbitrary sub-batches changes nothing."""
        split = data.draw(st.integers(min_value=1, max_value=len(lpns) - 1))
        one = make_ftl("greedy")
        two = make_ftl("greedy")
        arr = np.asarray(lpns, dtype=np.int64)
        one.write_pages(arr)
        two.write_pages(arr[:split])
        two.write_pages(arr[split:])
        assert full_state(one) == full_state(two)

    def test_duplicate_lpns_in_one_batch(self):
        """Later duplicates invalidate earlier ones, exactly like scalar."""
        lpns = [3, 3, 3, 7, 7, 3, 0, 0, 0, 0]
        scalar = make_ftl("greedy")
        batched = make_ftl("greedy")
        for lpn in lpns:
            scalar.write(lpn)
        batched.write_pages(np.asarray(lpns, dtype=np.int64))
        assert full_state(scalar) == full_state(batched)
        assert batched.map.mapped_pages == 3

    def test_steady_state_wa_matches(self):
        """A GC-heavy fill/overwrite run agrees on WA and GC accounting."""
        rng = np.random.default_rng(7)
        overwrites = rng.integers(0, LOGICAL, size=4 * LOGICAL, dtype=np.int64)
        scalar = make_ftl("greedy")
        batched = make_ftl("greedy")
        for lpn in range(LOGICAL):
            scalar.write(lpn)
        for lpn in overwrites.tolist():
            scalar.write(lpn)
        batched.write_pages(np.arange(LOGICAL, dtype=np.int64))
        batched.write_pages(overwrites)
        assert full_state(scalar) == full_state(batched)
        assert scalar.stats.gc_runs > 0

    def test_empty_batch_is_a_noop(self):
        ftl = make_ftl("greedy")
        before = full_state(ftl)
        assert ftl.write_pages(np.array([], dtype=np.int64)) == 0
        assert full_state(ftl) == before

    def test_out_of_range_batch_rejected(self):
        ftl = make_ftl("greedy")
        with pytest.raises(IndexError):
            ftl.write_pages(np.array([0, LOGICAL], dtype=np.int64))
        with pytest.raises(IndexError):
            ftl.write_pages(np.array([-1], dtype=np.int64))
        with pytest.raises(ValueError):
            ftl.write_pages(np.array([0], dtype=np.int64), stream=5)
