"""Property tests: the demand-paged FTL degenerates to the plain FTL.

When the CMT covers the whole translation map, nothing is ever evicted,
so no translation page is ever written to or fetched from flash: the
demand-paged FTL must then be *physics-identical* to a ConventionalFTL
configured with the same block reserve -- same mapping tables, GC victim
sequence, counters, and wear. That equivalence is the model's anchor:
everything A4/E2 measure at smaller budgets is then attributable to the
CMT budget alone, not to an accidentally different data path.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.ftl.dftl import DemandPagedFTL
from repro.ftl.ftl import ConventionalFTL, FTLConfig
from repro.sim.rng import make_rng


def tiny_geometry():
    # 16 blocks of 8 pages, 512 B pages: small enough for hypothesis,
    # random overwrites trigger foreground GC constantly.
    return FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )


def make_pair(policy: str = "greedy"):
    """A DFTL with full-map CMT and its matched conventional twin."""
    cfg = FTLConfig(
        op_ratio=0.2, gc_policy=policy, gc_low_watermark=1, gc_high_watermark=2
    )
    geometry = tiny_geometry()
    dftl = DemandPagedFTL(
        geometry, cfg, cmt_bytes=geometry.total_pages * geometry.page_size
    )
    # dftl.config carries the translation-block reserve it carved out;
    # the conventional twin gets the identical reserve so both data
    # paths see the same free pool.
    plain = ConventionalFTL(geometry, dftl.config)
    return dftl, plain


LOGICAL = make_pair()[0].logical_pages


def physics_state(ftl: ConventionalFTL) -> dict:
    return {
        "l2p": ftl.map.l2p.tolist(),
        "valid_counts": ftl.map.valid_counts.tolist(),
        "mapped_pages": ftl.map.mapped_pages,
        "free": list(ftl._free),
        "sealed": sorted(ftl._sealed),
        "stats": dataclasses.asdict(ftl.stats),
        "erase_counts": ftl.nand.wear.erase_counts.tolist(),
        "nand_counters": dataclasses.asdict(ftl.nand.counters),
    }


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "trim"]),
        st.integers(min_value=0, max_value=LOGICAL - 1),
    ),
    min_size=1,
    max_size=200,
)


class TestFullMapParity:
    @settings(max_examples=30, deadline=None)
    @given(policy=st.sampled_from(["greedy", "cost-benefit", "fifo"]), ops=ops_strategy)
    def test_physics_identical_to_conventional(self, policy, ops):
        dftl, plain = make_pair(policy)
        written = set()
        for op, lpn in ops:
            if op == "write":
                dftl.write(lpn)
                plain.write(lpn)
                written.add(lpn)
            elif op == "read" and lpn in written:
                dftl.read(lpn)
                plain.read(lpn)
            elif op == "trim":
                dftl.trim(lpn)
                plain.trim(lpn)
                written.discard(lpn)
        # Zero translation flash traffic at full coverage...
        assert dftl.store.stats.miss_reads == 0
        assert dftl.store.stats.translation_writes == 0
        assert dftl.store.stats.gc_runs == 0
        # ...hence identical physics.
        assert physics_state(dftl) == physics_state(plain)
        dftl.check_invariants()
        plain.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(ops=ops_strategy)
    def test_wa_decomposition_collapses(self, ops):
        dftl, plain = make_pair()
        for op, lpn in ops:
            if op == "write":
                dftl.write(lpn)
                plain.write(lpn)
        decomp = dftl.wa_decomposition()
        assert decomp.translation_pages == 0
        assert decomp.device_wa == plain.stats.device_write_amplification


def pressure_geometry():
    # 512-byte pages -> 128 map entries per translation page; at ~512
    # logical pages that is several translation pages, so a 1-page CMT
    # evicts constantly and translation blocks fill and GC.
    return FlashGeometry(
        page_size=512,
        pages_per_block=16,
        blocks_per_plane=8,
        planes_per_channel=2,
        channels=2,
    )


def overwrite_run(seed: int, cmt_pages: int = 1):
    geometry = pressure_geometry()
    dftl = DemandPagedFTL(
        geometry,
        FTLConfig(op_ratio=0.2, gc_low_watermark=1, gc_high_watermark=2),
        cmt_bytes=cmt_pages * geometry.page_size,
    )
    n = dftl.logical_pages
    for lpn in range(n):
        dftl.write(lpn)
    rng = make_rng(seed)
    for _ in range(8 * n):
        dftl.write(int(rng.integers(0, n)))
    return dftl


class TestSeededDeterminism:
    def test_translation_gc_is_deterministic(self):
        a = overwrite_run(seed=11)
        b = overwrite_run(seed=11)
        assert a.store.stats.gc_runs > 0  # the pressure case really GCs
        assert dataclasses.asdict(a.store.stats) == dataclasses.asdict(b.store.stats)
        assert np.array_equal(a.store.gtd, b.store.gtd)
        assert np.array_equal(a.map.l2p, b.map.l2p)
        assert np.array_equal(a.nand.wear.erase_counts, b.nand.wear.erase_counts)

    def test_wl_policy_determinism_with_dftl(self):
        geometry = pressure_geometry()
        runs = []
        for _ in range(2):
            dftl = DemandPagedFTL(
                geometry,
                FTLConfig(
                    op_ratio=0.2,
                    gc_low_watermark=1,
                    gc_high_watermark=2,
                    wl_policy="static",
                ),
                cmt_bytes=geometry.page_size,
            )
            n = dftl.logical_pages
            for lpn in range(n):
                dftl.write(lpn)
            rng = make_rng(5)
            for _ in range(6 * n):
                dftl.write(int(rng.integers(0, n // 4)))  # skewed: hot quarter
            runs.append(dftl)
        a, b = runs
        assert np.array_equal(a.nand.wear.erase_counts, b.nand.wear.erase_counts)
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        a.check_invariants()


class TestEpochKernelModes:
    """The epoch write path's physics must not depend on the kernel tier.

    ``write_pages`` dispatches through :mod:`repro.sim.compiled`
    (``cmt_probe_batch`` / ``cmt_evict_batch`` / the map kernels); with
    numba monkeypatched off, the same epochs must land bit-identical
    physics counters, TranslationEvent totals, and WA decomposition.
    """

    @staticmethod
    def _run_epochs(seed: int) -> dict:
        from repro.obs.frame import FrameSink
        from repro.obs.tracer import Tracer

        cfg = FTLConfig(
            op_ratio=0.2, gc_policy="greedy", gc_low_watermark=1, gc_high_watermark=2
        )
        # One translation page holds page_size/4 = 128 entries, so the
        # tiny 16-block geometry fits its whole map in one page and
        # never misses; quadruple the blocks so the map spans ~4
        # translation pages and a 2-page CMT really faults and evicts.
        geometry = dataclasses.replace(tiny_geometry(), blocks_per_plane=16)
        tracer = Tracer()
        sink = tracer.attach(FrameSink())
        dftl = DemandPagedFTL(
            geometry, cfg, cmt_bytes=2 * geometry.page_size, tracer=tracer
        )
        rng = make_rng(seed)
        n = dftl.logical_pages
        dftl.write_pages(np.arange(n, dtype=np.int64))
        for _ in range(6):
            epoch = rng.integers(0, n, size=int(rng.integers(1, 64)))
            dftl.write_pages(epoch.astype(np.int64))
        decomp = dftl.wa_decomposition()
        return {
            "physics": physics_state(dftl),
            "store": dataclasses.asdict(dftl.store.stats),
            "peak_resident_bytes": dftl.store.peak_resident_bytes,
            "translation_counters": {
                k: v
                for k, v in sink.frame.counters.items()
                if k.startswith("translation.")
            },
            "wa_decomposition": dataclasses.asdict(decomp),
        }

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_dispatch_matches_forced_fallback(self, seed):
        from repro.sim import compiled

        dispatched = self._run_epochs(seed)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(compiled, "USE_NUMBA", False)
            fallback = self._run_epochs(seed)
        assert dispatched == fallback

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_translation_events_match_store_stats(self, seed):
        result = self._run_epochs(seed)
        counters = result["translation_counters"]
        store = result["store"]
        assert counters.get("translation.miss_fetch", 0) == store["miss_reads"]
        assert counters.get("translation.writeback", 0) == store["dirty_evict_writes"]
        # The run must actually exercise the demand-fault machinery.
        assert store["miss_reads"] > 0
        assert store["dirty_evict_writes"] > 0

    @given(
        tvpn=st.integers(0, 3),
        count=st.integers(1, 12),
        warm=st.lists(st.integers(0, 3), max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_access_group_is_count_scalar_accesses(self, tvpn, count, warm):
        cfg = FTLConfig(
            op_ratio=0.2, gc_policy="greedy", gc_low_watermark=1, gc_high_watermark=2
        )
        geometry = dataclasses.replace(tiny_geometry(), blocks_per_plane=16)
        # 2-page CMT over a ~4-page translation map: group accesses can
        # hit, miss, and evict.
        grouped = DemandPagedFTL(geometry, cfg, cmt_bytes=2 * geometry.page_size)
        scalar = DemandPagedFTL(geometry, cfg, cmt_bytes=2 * geometry.page_size)
        npages = grouped.store.translation_pages
        tvpn %= npages
        for store in (grouped.store, scalar.store):
            for w in warm:
                store.access_tvpn(w % npages, dirty=True)
        grouped.store.access_group(tvpn, count)
        for _ in range(count):
            scalar.store.access_tvpn(tvpn, dirty=True)
        a, b = grouped.store, scalar.store
        assert np.array_equal(a.tvpn_slot, b.tvpn_slot)
        assert np.array_equal(a.slot_tvpn, b.slot_tvpn)
        assert np.array_equal(a.slot_dirty, b.slot_dirty)
        assert np.array_equal(a.slot_stamp, b.slot_stamp)
        assert a._stamp == b._stamp
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
