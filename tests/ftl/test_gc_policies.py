"""Tests for GC victim-selection policies."""

import pytest

from repro.ftl.gc import CostBenefitPolicy, FifoPolicy, GreedyPolicy, make_policy


def select(policy, valid_map, seal_map=None, now=100, ppb=64):
    seal_map = seal_map or {}
    return policy.select(
        list(valid_map),
        lambda b: valid_map[b],
        ppb,
        lambda b: seal_map.get(b, 0),
        now,
    )


class TestGreedy:
    def test_picks_min_valid(self):
        assert select(GreedyPolicy(), {1: 30, 2: 5, 3: 20}) == 2

    def test_zero_valid_short_circuits(self):
        assert select(GreedyPolicy(), {1: 0, 2: 5}) == 1

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            select(GreedyPolicy(), {})


class TestCostBenefit:
    def test_prefers_old_empty_blocks(self):
        policy = CostBenefitPolicy()
        # Block 1: young, nearly empty. Block 2: old, nearly empty.
        victim = select(
            policy,
            {1: 4, 2: 4},
            seal_map={1: 99, 2: 1},
            now=100,
        )
        assert victim == 2

    def test_age_can_beat_utilization(self):
        policy = CostBenefitPolicy()
        # Very old but half-full block beats a brand-new almost-empty one.
        victim = select(
            policy,
            {1: 2, 2: 32},
            seal_map={1: 100, 2: 1},
            now=101,
        )
        assert victim == 2

    def test_fully_valid_block_scores_lowest(self):
        policy = CostBenefitPolicy()
        victim = select(policy, {1: 64, 2: 63}, seal_map={1: 0, 2: 0}, now=10)
        assert victim == 2


class TestFifo:
    def test_reclaims_in_seal_order(self):
        policy = FifoPolicy()
        policy.notify_sealed(5, now=1)
        policy.notify_sealed(3, now=2)
        policy.notify_sealed(9, now=3)
        assert select(policy, {3: 10, 5: 50, 9: 0}) == 5

    def test_erased_block_forgotten(self):
        policy = FifoPolicy()
        policy.notify_sealed(5, now=1)
        policy.notify_sealed(3, now=2)
        policy.notify_erased(5)
        policy.notify_sealed(5, now=3)  # re-sealed later
        assert select(policy, {3: 10, 5: 10}) == 3


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("greedy", GreedyPolicy),
        ("cost-benefit", CostBenefitPolicy),
        ("fifo", FifoPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown GC policy"):
            make_policy("magic")
