"""Tests for FTL mapping-durability checkpointing."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.checkpoint import CheckpointedFTL, CheckpointPolicy
from repro.ftl.ftl import ConventionalFTL, FTLConfig
from repro.sim.rng import make_rng


class TestCheckpointPolicy:
    def test_checkpoint_fires_at_interval(self):
        policy = CheckpointPolicy(entries_per_metadata_page=4, interval_writes=10)
        written = 0
        for lpn in range(10):
            written += policy.note_mapping_update(lpn)
        # 10 lpns over 4-entry pages -> 3 dirty metadata pages at checkpoint.
        assert policy.stats.checkpoints == 1
        assert written == 3

    def test_dirty_set_deduplicates(self):
        policy = CheckpointPolicy(entries_per_metadata_page=1024, interval_writes=100)
        for _ in range(99):
            policy.note_mapping_update(0)  # same metadata page every time
        assert policy.dirty_pages == 1
        assert policy.checkpoint() == 1

    def test_disabled_interval_writes_nothing(self):
        policy = CheckpointPolicy(interval_writes=0)
        for lpn in range(1000):
            assert policy.note_mapping_update(lpn) == 0
        assert policy.stats.metadata_pages_written == 0

    def test_forced_checkpoint_clears_dirty(self):
        policy = CheckpointPolicy(entries_per_metadata_page=1, interval_writes=1000)
        policy.note_mapping_update(1)
        policy.note_mapping_update(2)
        assert policy.checkpoint() == 2
        assert policy.checkpoint() == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(entries_per_metadata_page=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_writes=-1)

    def test_overhead_accounting(self):
        policy = CheckpointPolicy(entries_per_metadata_page=1, interval_writes=2)
        policy.note_mapping_update(0)
        policy.note_mapping_update(1)  # checkpoint: 2 pages
        assert policy.stats.metadata_overhead(2) == pytest.approx(1.0)


class TestCheckpointedFTL:
    def test_total_wa_includes_metadata(self):
        device = CheckpointedFTL(
            ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.25)),
            interval_writes=256,
        )
        n = device.ftl.logical_pages
        for lpn in range(n):
            device.write(lpn)
        rng = make_rng(0)
        for _ in range(n):
            device.write(int(rng.integers(0, n)))
        base_wa = device.ftl.stats.device_write_amplification
        assert device.total_write_amplification > base_wa
        assert device.policy.stats.checkpoints > 0

    def test_reads_do_not_dirty(self):
        device = CheckpointedFTL(
            ConventionalFTL(FlashGeometry.small()), interval_writes=100
        )
        device.write(0)
        dirty_after_write = device.policy.dirty_pages
        device.read(0)
        assert device.policy.dirty_pages == dirty_after_write

    def test_trim_dirties(self):
        device = CheckpointedFTL(
            ConventionalFTL(FlashGeometry.small()), interval_writes=100
        )
        device.write(0)
        device.policy.checkpoint()
        device.trim(0)
        assert device.policy.dirty_pages == 1
