"""Tests for the SSD device facades, untimed and timed."""

import numpy as np
import pytest

from repro.block.interface import BlockDevice
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.ftl.device import ConventionalSSD, TimedConventionalSSD
from repro.ftl.ftl import FTLConfig
from repro.sim.engine import Engine
from repro.zns.device import TimedZNSDevice


class TestConventionalSSD:
    def test_implements_block_device_protocol(self):
        assert isinstance(ConventionalSSD(FlashGeometry.small()), BlockDevice)
        assert isinstance(RamDisk(16), BlockDevice)

    def test_round_trip_with_payloads(self):
        ssd = ConventionalSSD(FlashGeometry.small(), store_data=True)
        ssd.write_block(5, b"hello")
        assert ssd.read_block(5) == b"hello"

    def test_trim_then_read_fails(self):
        from repro.ftl.ftl import UnmappedReadError

        ssd = ConventionalSSD(FlashGeometry.small())
        ssd.write_block(5)
        ssd.trim_block(5)
        with pytest.raises(UnmappedReadError):
            ssd.read_block(5)

    def test_wa_visible_through_facade(self):
        ssd = ConventionalSSD(FlashGeometry.small(), FTLConfig(op_ratio=0.07))
        rng = np.random.default_rng(0)
        for lba in range(ssd.num_blocks):
            ssd.write_block(lba)
        for _ in range(2 * ssd.num_blocks):
            ssd.write_block(int(rng.integers(0, ssd.num_blocks)))
        assert ssd.device_write_amplification > 1.5


class TestRamDisk:
    def test_round_trip(self):
        disk = RamDisk(num_blocks=8)
        disk.write_block(3, "x")
        assert disk.read_block(3) == "x"

    def test_unwritten_reads_none(self):
        assert RamDisk(8).read_block(0) is None

    def test_trim_clears(self):
        disk = RamDisk(8)
        disk.write_block(1, "x")
        disk.trim_block(1)
        assert disk.read_block(1) is None

    def test_bounds(self):
        with pytest.raises(IndexError):
            RamDisk(8).read_block(8)
        with pytest.raises(ValueError):
            RamDisk(0)


class TestTimedConventionalSSD:
    def test_reads_and_writes_complete_with_latency(self):
        eng = Engine()
        ssd = TimedConventionalSSD(eng, FlashGeometry.small())

        def driver(eng, ssd):
            yield ssd.submit_write(0)
            latency = yield ssd.submit_read(0)
            return latency

        p = eng.process(driver(eng, ssd))
        latency = eng.run(until=p)
        assert latency > 0
        assert ssd.read_latency.count == 1
        assert ssd.write_latency.count == 1

    def test_background_gc_sustains_random_overwrites(self):
        eng = Engine()
        ssd = TimedConventionalSSD(eng, FlashGeometry.small(), FTLConfig(op_ratio=0.15))
        rng = np.random.default_rng(1)
        n = ssd.ftl.logical_pages

        def driver(eng, ssd):
            for lpn in range(n):
                yield ssd.submit_write(lpn)
            for _ in range(n):
                yield ssd.submit_write(int(rng.integers(0, n)))

        p = eng.process(driver(eng, ssd))
        eng.run(until=p)
        assert ssd.ftl.stats.gc_runs > 0
        ssd.ftl.check_invariants()

    def test_gc_inflates_read_tail_latency(self):
        """The §2.4 phenomenon: concurrent reads during GC-heavy writes see
        tail latencies far above the raw read service time."""
        eng = Engine()
        ssd = TimedConventionalSSD(eng, FlashGeometry.small(), FTLConfig(op_ratio=0.07))
        rng = np.random.default_rng(2)
        n = ssd.ftl.logical_pages
        # Prefill untimed for speed.
        for lpn in range(n):
            ssd.ftl.write(lpn)

        def writer(eng, ssd):
            for _ in range(2 * n):
                yield ssd.submit_write(int(rng.integers(0, n)))

        def reader(eng, ssd):
            from repro.sim.engine import Timeout

            for _ in range(500):
                yield Timeout(eng, 200.0)
                yield ssd.submit_read(int(rng.integers(0, n)))

        w = eng.process(writer(eng, ssd))
        r = eng.process(reader(eng, ssd))
        eng.run(until=w)
        eng.run(until=r)
        summary = ssd.read_latency.summary()
        raw_read = ssd.service.timing.read_total_us(ssd.ftl.geometry.page_size)
        assert summary.p99 > 2 * raw_read


class TestTimedZNSDevice:
    def test_write_and_read_latencies(self):
        eng = Engine()
        dev = TimedZNSDevice(eng, ZonedGeometry.small())

        def driver(eng, dev):
            yield dev.submit_write(0)
            latency = yield dev.submit_read(0, 0)
            return latency

        p = eng.process(driver(eng, dev))
        latency = eng.run(until=p)
        assert latency > 0

    def test_concurrent_writes_one_zone_serialize(self):
        eng = Engine()
        dev = TimedZNSDevice(eng, ZonedGeometry.small())
        procs = [dev.submit_write(0) for _ in range(4)]
        for p in procs:
            eng.run(until=p)
        program = dev.service.timing.program_total_us(dev.device.page_size)
        # Lock serialization: last write waited for the first three.
        assert dev.write_latency.summary().max >= 3.5 * program

    def test_concurrent_appends_one_zone_parallelize(self):
        eng = Engine()
        dev = TimedZNSDevice(eng, ZonedGeometry.small())
        procs = [dev.submit_append(0) for _ in range(4)]
        for p in procs:
            eng.run(until=p)
        program = dev.service.timing.program_total_us(dev.device.page_size)
        # Striped appends land on distinct planes: far better than 4x serial.
        assert dev.append_latency.summary().max < 3 * program

    def test_reset_erases_in_parallel(self):
        eng = Engine()
        dev = TimedZNSDevice(eng, ZonedGeometry.small())

        def driver(eng, dev):
            yield dev.submit_write(0, npages=dev.device.geometry.pages_per_zone)
            start = eng.now
            yield dev.submit_reset(0)
            return eng.now - start

        p = eng.process(driver(eng, dev))
        reset_time = eng.run(until=p)
        erase = dev.service.timing.erase_us
        # Blocks of the zone sit on different planes; erases overlap.
        assert reset_time < dev.device.geometry.blocks_per_zone * erase
