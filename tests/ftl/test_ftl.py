"""Tests for the conventional FTL: writes, GC, WA, wear leveling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.ftl.ftl import (
    CapacityError,
    ConventionalFTL,
    FTLConfig,
    GCStuckError,
    UnmappedReadError,
)


def make_ftl(op_ratio=0.25, **kwargs):
    return ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=op_ratio, **kwargs))


def fill_logical(ftl):
    for lpn in range(ftl.logical_pages):
        ftl.write(lpn)


class TestConfig:
    def test_negative_op_rejected(self):
        with pytest.raises(ValueError):
            FTLConfig(op_ratio=-0.1)

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            FTLConfig(streams=0)

    def test_exported_capacity_shrinks_with_op(self):
        small = make_ftl(op_ratio=0.0)
        big_op = make_ftl(op_ratio=0.28)
        assert big_op.logical_pages < small.logical_pages

    def test_minimum_reserve_always_held(self):
        ftl = make_ftl(op_ratio=0.0)
        spare_pages = ftl.geometry.total_pages - ftl.logical_pages
        assert spare_pages >= 4 * ftl.geometry.pages_per_block

    def test_tiny_device_rejected(self):
        g = FlashGeometry(pages_per_block=4, blocks_per_plane=1, planes_per_channel=1, channels=2)
        with pytest.raises(CapacityError):
            ConventionalFTL(g, FTLConfig())

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError):
            ConventionalFTL(
                FlashGeometry.small(),
                FTLConfig(gc_low_watermark=5, gc_high_watermark=5),
            )


class TestReadWrite:
    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write(42)
        op = ftl.read(42)
        assert op.page is not None
        assert ftl.stats.host_pages_read == 1

    def test_read_unmapped_rejected(self):
        with pytest.raises(UnmappedReadError):
            make_ftl().read(0)

    def test_overwrite_moves_physical_page(self):
        ftl = make_ftl()
        ftl.write(0)
        first = ftl.map.lookup(0)
        ftl.write(0)
        assert ftl.map.lookup(0) != first

    def test_write_out_of_range_rejected(self):
        ftl = make_ftl()
        with pytest.raises(IndexError):
            ftl.write(ftl.logical_pages)

    def test_bad_stream_rejected(self):
        with pytest.raises(ValueError):
            make_ftl().write(0, stream=5)

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(0)
        ftl.trim(0)
        with pytest.raises(UnmappedReadError):
            ftl.read(0)
        assert ftl.stats.trims == 1

    def test_utilization_tracks_mapped(self):
        ftl = make_ftl()
        assert ftl.utilization() == 0.0
        fill_logical(ftl)
        assert ftl.utilization() == pytest.approx(1.0)


class TestGarbageCollection:
    def test_sequential_fill_no_gc(self):
        ftl = make_ftl()
        fill_logical(ftl)
        assert ftl.stats.gc_pages_copied == 0
        assert ftl.stats.device_write_amplification == pytest.approx(1.0)

    def test_steady_state_random_writes_trigger_gc(self):
        ftl = make_ftl(op_ratio=0.25)
        fill_logical(ftl)
        rng = np.random.default_rng(0)
        for _ in range(2 * ftl.logical_pages):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        assert ftl.stats.gc_runs > 0
        assert ftl.stats.device_write_amplification > 1.0

    def test_wa_decreases_with_more_op(self):
        results = {}
        for op in (0.07, 0.28):
            ftl = ConventionalFTL(FlashGeometry.bench(), FTLConfig(op_ratio=op))
            fill_logical(ftl)
            rng = np.random.default_rng(1)
            base = ftl.stats.host_pages_written
            for _ in range(2 * ftl.logical_pages):
                ftl.write(int(rng.integers(0, ftl.logical_pages)))
            results[op] = ftl.stats.device_write_amplification
        assert results[0.28] < results[0.07]

    def test_gc_preserves_data_mappings(self):
        ftl = make_ftl(op_ratio=0.25)
        fill_logical(ftl)
        rng = np.random.default_rng(2)
        for _ in range(ftl.logical_pages):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        # Every logical page must still resolve and be readable.
        for lpn in range(ftl.logical_pages):
            ftl.read(lpn)

    def test_collect_reclaims_space(self):
        """A single collect may spend a free block on the GC destination
        (net 0), but repeated collection strictly grows the free pool."""
        ftl = make_ftl(op_ratio=0.25)
        fill_logical(ftl)
        rng = np.random.default_rng(3)
        for _ in range(ftl.logical_pages // 2):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        before = ftl.free_block_count
        ftl.collect_once()
        assert ftl.free_block_count >= before
        ftl.collect(before + 3)
        assert ftl.free_block_count >= before + 3

    def test_collect_without_sealed_blocks_rejected(self):
        with pytest.raises(GCStuckError):
            make_ftl().collect_once()

    def test_trim_makes_gc_cheap(self):
        """TRIMmed data needs no copy-forward: WA stays at 1 after discard."""
        ftl = make_ftl(op_ratio=0.07)
        fill_logical(ftl)
        for lpn in range(ftl.logical_pages):
            ftl.trim(lpn)
        writes_before = ftl.stats.host_pages_written
        fill_logical(ftl)  # refill: GC only erases, never copies
        assert ftl.stats.host_pages_written == 2 * writes_before
        assert ftl.stats.gc_pages_copied == 0


class TestMultiStream:
    def test_streams_use_separate_blocks(self):
        ftl = ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.25, streams=2))
        ftl.write(0, stream=0)
        ftl.write(1, stream=1)
        block0 = ftl.geometry.block_of_page(ftl.map.lookup(0))
        block1 = ftl.geometry.block_of_page(ftl.map.lookup(1))
        assert block0 != block1

    def test_stream_separation_cuts_wa_for_hot_cold(self):
        """Hot/cold separation via streams reduces WA -- the multi-stream
        directive's whole purpose (paper §2.3)."""

        def run(streams):
            ftl = ConventionalFTL(
                FlashGeometry.bench(), FTLConfig(op_ratio=0.07, streams=streams)
            )
            n = ftl.logical_pages
            hot = n // 20
            rng = np.random.default_rng(4)
            for lpn in range(n):
                ftl.write(lpn, stream=0)
            # Measure WA over the steady-state phase only.
            host_before = ftl.stats.host_pages_written
            gc_before = ftl.stats.gc_pages_copied
            for _ in range(4 * n):
                # 95% of writes hit the hot 5% of the space.
                if rng.random() < 0.95:
                    lpn = int(rng.integers(0, hot))
                    ftl.write(lpn, stream=1 if streams > 1 else 0)
                else:
                    lpn = int(rng.integers(hot, n))
                    ftl.write(lpn, stream=0)
            host = ftl.stats.host_pages_written - host_before
            copied = ftl.stats.gc_pages_copied - gc_before
            return (host + copied) / host

        assert run(streams=2) < run(streams=1)


class TestWearLeveling:
    def test_free_block_choice_prefers_low_wear(self):
        ftl = make_ftl()
        # Artificially wear most free blocks; allocation should avoid them.
        for block in list(ftl._free)[:-4]:
            ftl.nand.wear.erase_counts[block] = 100
        chosen = ftl._take_free_block()
        assert ftl.nand.wear.erase_counts[chosen] == 0

    def test_wear_level_once_migrates_cold_block(self):
        ftl = make_ftl(op_ratio=0.25)
        fill_logical(ftl)
        sealed_before = set(ftl.sealed_blocks)
        ops = ftl.wear_level_once()
        assert ops, "expected migration ops"
        # Exactly one sealed block was released back to the free pool.
        released = sealed_before - set(ftl.sealed_blocks)
        assert len(released) >= 1

    def test_wear_level_noop_without_sealed(self):
        assert make_ftl().wear_level_once() == []

    def test_wear_spread_bounded_under_uniform_traffic(self):
        ftl = ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.25))
        fill_logical(ftl)
        rng = np.random.default_rng(5)
        for _ in range(4 * ftl.logical_pages):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        stats = ftl.nand.wear.stats()
        assert stats.max_erases - stats.min_erases <= max(4, stats.mean_erases * 2)


class TestInvariants:
    def test_invariants_after_heavy_traffic(self):
        ftl = make_ftl(op_ratio=0.11)
        fill_logical(ftl)
        rng = np.random.default_rng(6)
        for _ in range(3 * ftl.logical_pages):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        ftl.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        op_ratio=st.sampled_from([0.07, 0.15, 0.28]),
        trim_fraction=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_invariants_under_random_workload(self, seed, op_ratio, trim_fraction):
        ftl = ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=op_ratio))
        rng = np.random.default_rng(seed)
        n = ftl.logical_pages
        for _ in range(n + n // 2):
            lpn = int(rng.integers(0, n))
            if rng.random() < trim_fraction:
                ftl.trim(lpn)
            else:
                ftl.write(lpn)
        ftl.check_invariants()
        # All mapped pages remain readable.
        for lpn in range(0, n, 97):
            if ftl.map.is_mapped(lpn):
                ftl.read(lpn)


class TestReadDisturbScrub:
    def test_disturbed_block_refreshed(self):
        from repro.flash.nand import NandArray
        from repro.flash.geometry import FlashGeometry

        geometry = FlashGeometry.small()
        nand = NandArray(geometry, read_disturb_limit=100)
        ftl = ConventionalFTL(geometry, FTLConfig(op_ratio=0.25), nand=nand)
        fill_logical(ftl)
        # Hammer one logical page until its block crosses the threshold.
        victim_block = ftl.geometry.block_of_page(ftl.map.lookup(0))
        for _ in range(90):
            ftl.read(0)
        assert nand.disturb_pressure(victim_block) >= 0.8
        ops = ftl.scrub_disturbed(threshold=0.8)
        assert ops, "expected a scrub"
        assert ftl.stats.scrubs >= 1
        # The hammered data moved and the old block was recycled.
        assert ftl.geometry.block_of_page(ftl.map.lookup(0)) != victim_block
        assert nand.reads_since_erase(victim_block) == 0
        ftl.check_invariants()

    def test_scrub_noop_below_threshold(self):
        ftl = make_ftl(op_ratio=0.25)
        fill_logical(ftl)
        ftl.read(0)
        assert ftl.scrub_disturbed() == []

    def test_data_survives_scrub(self):
        from repro.flash.nand import NandArray
        from repro.flash.geometry import FlashGeometry

        geometry = FlashGeometry.small()
        nand = NandArray(geometry, read_disturb_limit=50)
        ftl = ConventionalFTL(geometry, FTLConfig(op_ratio=0.25), nand=nand)
        fill_logical(ftl)
        for _ in range(60):
            ftl.read(5)
        ftl.scrub_disturbed(threshold=0.8)
        for lpn in range(ftl.logical_pages):
            ftl.read(lpn)  # everything still resolves
