"""Wear-leveling policies: selection math, migration, spare accounting."""

import numpy as np
import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.ftl import ConventionalFTL, FTLConfig
from repro.ftl.wearlevel import (
    WL_POLICIES,
    DynamicWearLevel,
    NoWearLevel,
    StaticWearLevel,
    make_wearlevel,
    spare_report,
)
from repro.workloads.synthetic import hot_cold_stream


def tiny_geometry():
    return FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )


def make_ftl(wl_policy=None, op_ratio=0.2):
    return ConventionalFTL(
        tiny_geometry(),
        FTLConfig(
            op_ratio=op_ratio,
            gc_low_watermark=1,
            gc_high_watermark=2,
            wl_policy=wl_policy,
        ),
    )


def run_hot_cold(wl_policy, ops_multiple=8, seed=0):
    ftl = make_ftl(wl_policy)
    n = ftl.logical_pages
    for lpn in range(n):
        ftl.write(lpn)
    for lpn, _ in hot_cold_stream(n, ops_multiple * n, seed=seed):
        ftl.write(lpn)
    return ftl


class TestPolicySelection:
    def test_registry_is_complete(self):
        assert WL_POLICIES == ("dynamic", "none", "static")

    def test_make_by_name(self):
        assert isinstance(make_wearlevel("none"), NoWearLevel)
        assert isinstance(make_wearlevel("dynamic"), DynamicWearLevel)
        assert isinstance(make_wearlevel("static"), StaticWearLevel)

    def test_none_means_default_dynamic(self):
        assert isinstance(make_wearlevel(None), DynamicWearLevel)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown wear-level policy"):
            make_wearlevel("round-robin")

    def test_none_policy_takes_pool_head(self):
        free = np.array([9, 3, 7])
        wear = np.array([0, 5, 0, 0, 0, 0, 0, 2, 0, 9])
        assert NoWearLevel().select(free, wear, planes=2, preferred=0) == 0

    def test_dynamic_picks_least_worn(self):
        free = np.array([9, 3, 7])
        wear = np.array([0, 0, 0, 4, 0, 0, 0, 1, 0, 9])
        # wear: block 9 -> 9, block 3 -> 4, block 7 -> 1
        policy = DynamicWearLevel()
        assert policy.select(free, wear, planes=2, preferred=0) == 2

    def test_dynamic_tie_breaks_by_plane_distance(self):
        free = np.array([4, 5])
        wear = np.zeros(8, dtype=np.int64)
        policy = DynamicWearLevel()
        # Equal wear: the block on the preferred plane wins.
        assert policy.select(free, wear, planes=2, preferred=0) == 0
        assert policy.select(free, wear, planes=2, preferred=1) == 1

    def test_static_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            StaticWearLevel(threshold=0)

    def test_static_migration_trigger(self):
        policy = StaticWearLevel(threshold=4)
        assert not policy.wants_migration(3)
        assert policy.wants_migration(4)
        assert not DynamicWearLevel().wants_migration(100)

    def test_migrates_flag(self):
        assert StaticWearLevel().migrates
        assert not DynamicWearLevel().migrates
        assert not NoWearLevel().migrates


class TestConfigPlumbing:
    def test_bad_policy_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="wear-level"):
            FTLConfig(wl_policy="bogus")

    def test_ftl_carries_selected_policy(self):
        assert make_ftl("static").wearlevel.name == "static"
        assert make_ftl("none").wearlevel.name == "none"
        assert make_ftl().wearlevel.name == "dynamic"

    def test_default_matches_explicit_dynamic(self):
        """wl_policy=None reproduces the historical allocation exactly."""
        default = run_hot_cold(None, ops_multiple=4)
        explicit = run_hot_cold("dynamic", ops_multiple=4)
        assert np.array_equal(
            default.nand.wear.erase_counts, explicit.nand.wear.erase_counts
        )
        assert default.stats.gc_pages_copied == explicit.stats.gc_pages_copied


class TestWearOutcomes:
    def test_policy_changes_erase_spread(self):
        spreads = {p: run_hot_cold(p).wear_spread() for p in WL_POLICIES}
        assert len(set(spreads.values())) > 1, spreads

    def test_static_caps_spread_under_hot_cold(self):
        # Cold blocks pin their erase count at ~0 unless migrated: the
        # static policy must land a tighter spread than no leveling.
        static = run_hot_cold("static").wear_spread()
        none = run_hot_cold("none").wear_spread()
        assert static < none, (static, none)

    def test_seeded_runs_are_deterministic(self):
        for policy in WL_POLICIES:
            a = run_hot_cold(policy, ops_multiple=4, seed=3)
            b = run_hot_cold(policy, ops_multiple=4, seed=3)
            assert np.array_equal(
                a.nand.wear.erase_counts, b.nand.wear.erase_counts
            )
            assert a.stats.gc_runs == b.stats.gc_runs
            assert np.array_equal(a.map.l2p, b.map.l2p)


class TestSpareReport:
    def test_report_shape_and_policy(self):
        ftl = run_hot_cold("static", ops_multiple=2)
        report = spare_report(ftl)
        assert report["wl_policy"] == "static"
        assert report["spare_blocks"] > 0
        assert report["blocks_retired"] == 0
        assert report["spare_blocks_remaining"] == report["spare_blocks"]
        assert report["erase_spread"] >= 0
        assert report["erase_mean"] > 0

    def test_retirement_draws_down_spare_pool(self):
        ftl = make_ftl()
        before = spare_report(ftl)
        assert before["blocks_retired"] == 0
        # A grown bad block consumes the same margin wear leveling
        # spreads load over.
        ftl.nand.wear.mark_bad(0)
        after = spare_report(ftl)
        assert after["blocks_retired"] == 1
        assert (
            after["spare_blocks_remaining"]
            == before["spare_blocks_remaining"] - 1
        )
