"""Power-loss recovery: checkpoint + OOB replay rebuilds the mapping.

The acceptance bar for the fault-injection PR: a seeded run that crashes
and recovers must end with the same *logical* state as one that never
crashed -- every logical page maps to a physical page holding it, reads
return, and the structural invariants hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.flash.geometry import FlashGeometry
from repro.ftl.ftl import ConventionalFTL, FTLConfig


def make_ftl(**kwargs) -> ConventionalFTL:
    return ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.25), **kwargs)


def seeded_workload(ftl: ConventionalFTL, n_extra: int, seed: int) -> np.ndarray:
    """Fill the logical space, then overwrite ``n_extra`` seeded pages."""
    lpns = np.concatenate(
        [
            np.arange(ftl.logical_pages, dtype=np.int64),
            np.random.default_rng(seed).integers(
                0, ftl.logical_pages, size=n_extra, dtype=np.int64
            ),
        ]
    )
    for lpn in lpns:
        ftl.write(int(lpn))
    return lpns


def mapping_of(ftl: ConventionalFTL) -> np.ndarray:
    return ftl.map.l2p.copy()


class TestCrashRecover:
    def test_recover_from_snapshot_restores_mapping(self):
        ftl = make_ftl()
        seeded_workload(ftl, 500, seed=1)
        snapshot = ftl.snapshot_mapping()
        # More writes after the checkpoint: these replay from OOB.
        for lpn in np.random.default_rng(2).integers(0, ftl.logical_pages, 300):
            ftl.write(int(lpn))
        before = mapping_of(ftl)
        ftl.crash()
        replayed = ftl.recover(snapshot)
        assert replayed > 0
        np.testing.assert_array_equal(mapping_of(ftl), before)
        ftl.check_invariants()

    def test_recover_without_snapshot_full_replay(self):
        ftl = make_ftl()
        seeded_workload(ftl, 400, seed=3)
        before = mapping_of(ftl)
        ftl.crash()
        ftl.recover()  # no checkpoint: every live page replays from OOB
        np.testing.assert_array_equal(mapping_of(ftl), before)
        ftl.check_invariants()

    def test_crashed_run_matches_never_crashed_run(self):
        crashed, control = make_ftl(), make_ftl()
        seeded_workload(crashed, 500, seed=4)
        seeded_workload(control, 500, seed=4)
        snapshot = crashed.snapshot_mapping()
        tail = np.random.default_rng(5).integers(0, crashed.logical_pages, 200)
        for lpn in tail:
            crashed.write(int(lpn))
            control.write(int(lpn))
        crashed.crash()
        crashed.recover(snapshot)
        # Flash state is shared history, RAM state is reconstruction:
        # the recovered forward map equals the uninterrupted one.
        np.testing.assert_array_equal(mapping_of(crashed), mapping_of(control))
        assert crashed.free_block_count == control.free_block_count
        assert crashed.sealed_blocks == control.sealed_blocks

    def test_recovered_ftl_keeps_serving(self):
        ftl = make_ftl()
        seeded_workload(ftl, 300, seed=6)
        ftl.crash()
        ftl.recover()
        for lpn in range(0, ftl.logical_pages, 97):
            ftl.read(lpn)
        for lpn in range(0, ftl.logical_pages, 89):
            ftl.write(lpn)
        ftl.check_invariants()
        assert ftl.stats.crash_recoveries == 1

    def test_mismatched_snapshot_rejected(self):
        ftl = make_ftl()
        snapshot = ftl.snapshot_mapping()
        other = ConventionalFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.4))
        other.crash()
        with pytest.raises(ValueError, match="logical space"):
            other.recover(snapshot)

    @given(seed=st.integers(0, 2**31 - 1), checkpoint_at=st.integers(0, 400))
    @settings(max_examples=10, deadline=None)
    def test_recovery_is_exact_at_any_checkpoint_point(self, seed, checkpoint_at):
        ftl = make_ftl()
        rng = np.random.default_rng(seed)
        for lpn in np.arange(ftl.logical_pages):
            ftl.write(int(lpn))
        for lpn in rng.integers(0, ftl.logical_pages, checkpoint_at):
            ftl.write(int(lpn))
        snapshot = ftl.snapshot_mapping()
        for lpn in rng.integers(0, ftl.logical_pages, 150):
            ftl.write(int(lpn))
        before = mapping_of(ftl)
        ftl.crash()
        ftl.recover(snapshot)
        np.testing.assert_array_equal(mapping_of(ftl), before)
        ftl.check_invariants()


class TestRecoveryUnderFaults:
    def test_recover_after_program_faults_and_retirements(self):
        plan = FaultPlan(seed=11, program_fail_prob=0.01, erase_fail_prob=0.02)
        ftl = make_ftl(faults=FaultInjector(plan))
        seeded_workload(ftl, 800, seed=12)
        assert ftl.stats.program_faults > 0  # the plan actually bit
        before = mapping_of(ftl)
        ftl.crash()
        ftl.recover()
        # Burned pages and retired blocks never enter the replay: the
        # reconstructed map equals the pre-crash one exactly.
        np.testing.assert_array_equal(mapping_of(ftl), before)
        ftl.check_invariants()

    def test_snapshot_entry_in_retired_block_dropped(self):
        ftl = make_ftl()
        seeded_workload(ftl, 200, seed=13)
        snapshot = ftl.snapshot_mapping()
        # Retire a block that holds live data after the checkpoint.
        victim = int(ftl.map.l2p[0]) // ftl.geometry.pages_per_block
        ftl.nand.wear.mark_bad(victim)
        ftl.crash()
        ftl.recover(snapshot)
        # Every entry pointing into the dead block was dropped, not
        # resurrected as a dangling mapping.
        blocks = ftl.map.l2p[ftl.map.l2p >= 0] // ftl.geometry.pages_per_block
        assert victim not in set(blocks.tolist())
