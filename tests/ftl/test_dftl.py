"""Tests for the demand-paged FTL mapping model."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.dftl import DemandPagedFTL, MappingCache
from repro.ftl.ftl import FTLConfig
from repro.sim.rng import make_rng


class TestMappingCache:
    def test_first_access_misses(self):
        cache = MappingCache(entries_per_translation_page=4, capacity_pages=2)
        reads, writes = cache.access(0, dirty=False)
        assert (reads, writes) == (1, 0)

    def test_same_translation_page_hits(self):
        cache = MappingCache(entries_per_translation_page=4, capacity_pages=2)
        cache.access(0, dirty=False)
        reads, writes = cache.access(3, dirty=False)  # same page (lpns 0-3)
        assert (reads, writes) == (0, 0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=2)
        cache.access(0, dirty=False)
        cache.access(1, dirty=False)
        cache.access(0, dirty=False)  # bump 0
        cache.access(2, dirty=False)  # evicts 1
        reads, _ = cache.access(0, dirty=False)
        assert reads == 0
        reads, _ = cache.access(1, dirty=False)
        assert reads == 1

    def test_dirty_eviction_writes_back(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=True)
        reads, writes = cache.access(1, dirty=False)
        assert (reads, writes) == (1, 1)
        assert cache.stats.dirty_evict_writes == 1

    def test_clean_eviction_is_free(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=False)
        reads, writes = cache.access(1, dirty=False)
        assert (reads, writes) == (1, 0)

    def test_hit_marks_dirty(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=False)
        cache.access(0, dirty=True)  # hit, but now dirty
        _, writes = cache.access(1, dirty=False)
        assert writes == 1

    def test_dram_accounting(self):
        cache = MappingCache(entries_per_translation_page=1024, capacity_pages=8)
        assert cache.dram_bytes == 8 * 1024 * 4

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MappingCache(entries_per_translation_page=0)
        with pytest.raises(ValueError):
            MappingCache(capacity_pages=0)


class TestDemandPagedFTL:
    def _drive(self, device, ops=4000, seed=0):
        n = device.ftl.logical_pages
        for lpn in range(n):
            device.write(lpn)
        rng = make_rng(seed)
        for _ in range(ops):
            lpn = int(rng.integers(0, n))
            if rng.random() < 0.5:
                device.read(lpn)
            else:
                device.write(lpn)

    def test_full_cache_has_no_overhead(self):
        device = DemandPagedFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.11),
                                cache_capacity_pages=64)
        self._drive(device)
        # Only compulsory misses (first touch of each translation page).
        assert device.read_overhead_factor < 1.05
        assert device.write_overhead_factor == pytest.approx(1.0)

    def test_starved_cache_pays_flash_reads(self):
        device = DemandPagedFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.11),
                                cache_capacity_pages=1)
        self._drive(device)
        assert device.read_overhead_factor > 1.5
        assert device.cache.stats.hit_rate < 0.8

    def test_overhead_monotone_in_cache_size(self):
        overheads = []
        for pages in (1, 2, 4):
            device = DemandPagedFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.11),
                                    cache_capacity_pages=pages)
            self._drive(device, seed=1)
            overheads.append(device.read_overhead_factor)
        assert overheads == sorted(overheads, reverse=True)

    def test_data_path_unaffected(self):
        """The data path (mapping correctness, GC) is the plain FTL's."""
        device = DemandPagedFTL(FlashGeometry.small(), FTLConfig(op_ratio=0.25),
                                cache_capacity_pages=1)
        self._drive(device, ops=2000)
        device.ftl.check_invariants()
        for lpn in range(0, device.ftl.logical_pages, 97):
            device.read(lpn)

    def test_trim_counts_as_dirty_access(self):
        device = DemandPagedFTL(FlashGeometry.small(), cache_capacity_pages=1)
        device.write(0)
        device.trim(0)
        assert device.cache.stats.lookups == 2

    def test_full_map_size_reported(self):
        device = DemandPagedFTL(FlashGeometry.small())
        per_page = device.cache.entries_per_page
        expected = (device.ftl.logical_pages + per_page - 1) // per_page
        assert device.full_map_translation_pages == expected
