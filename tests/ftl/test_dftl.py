"""Tests for the demand-paged FTL: real translation pages on flash."""

import numpy as np
import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.dftl import (
    DemandPagedFTL,
    MappingCache,
    oob_tag_for_tvpn,
    tvpn_from_oob,
)
from repro.ftl.ftl import FTLConfig
from repro.sim.rng import make_rng


def small_dftl(cmt_pages=8, op_ratio=0.11, **kwargs):
    geometry = FlashGeometry.small()
    return DemandPagedFTL(
        geometry,
        FTLConfig(op_ratio=op_ratio),
        cmt_bytes=cmt_pages * geometry.page_size,
        **kwargs,
    )


def drive(device, ops=4000, seed=0):
    n = device.logical_pages
    for lpn in range(n):
        device.write(lpn)
    rng = make_rng(seed)
    for _ in range(ops):
        lpn = int(rng.integers(0, n))
        if rng.random() < 0.5:
            device.read(lpn)
        else:
            device.write(lpn)


class TestMappingCache:
    """The legacy accounting model is still exported (and still correct)."""

    def test_first_access_misses(self):
        cache = MappingCache(entries_per_translation_page=4, capacity_pages=2)
        reads, writes = cache.access(0, dirty=False)
        assert (reads, writes) == (1, 0)

    def test_same_translation_page_hits(self):
        cache = MappingCache(entries_per_translation_page=4, capacity_pages=2)
        cache.access(0, dirty=False)
        reads, writes = cache.access(3, dirty=False)  # same page (lpns 0-3)
        assert (reads, writes) == (0, 0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=2)
        cache.access(0, dirty=False)
        cache.access(1, dirty=False)
        cache.access(0, dirty=False)  # bump 0
        cache.access(2, dirty=False)  # evicts 1
        reads, _ = cache.access(0, dirty=False)
        assert reads == 0
        reads, _ = cache.access(1, dirty=False)
        assert reads == 1

    def test_dirty_eviction_writes_back(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=True)
        reads, writes = cache.access(1, dirty=False)
        assert (reads, writes) == (1, 1)
        assert cache.stats.dirty_evict_writes == 1

    def test_clean_eviction_is_free(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=False)
        reads, writes = cache.access(1, dirty=False)
        assert (reads, writes) == (1, 0)

    def test_hit_marks_dirty(self):
        cache = MappingCache(entries_per_translation_page=1, capacity_pages=1)
        cache.access(0, dirty=False)
        cache.access(0, dirty=True)  # hit, but now dirty
        _, writes = cache.access(1, dirty=False)
        assert writes == 1

    def test_dram_accounting(self):
        cache = MappingCache(entries_per_translation_page=1024, capacity_pages=8)
        assert cache.dram_bytes == 8 * 1024 * 4

    def test_hit_rate_zero_before_any_lookup(self):
        # The edge fix: no lookups is "no hits", not a vacuous 1.0.
        cache = MappingCache(entries_per_translation_page=4, capacity_pages=2)
        assert cache.stats.hit_rate == 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MappingCache(entries_per_translation_page=0)
        with pytest.raises(ValueError):
            MappingCache(capacity_pages=0)


class TestOobTags:
    def test_round_trip(self):
        for tvpn in (0, 1, 7, 1023):
            tag = oob_tag_for_tvpn(tvpn)
            assert tag <= -2
            assert tvpn_from_oob(tag) == tvpn

    def test_disjoint_from_data_lpns_and_unmapped(self):
        tags = {oob_tag_for_tvpn(t) for t in range(64)}
        assert all(tag < -1 for tag in tags)  # -1 is UNMAPPED, >=0 is data


class TestDramBudget:
    """Resident CMT bytes must honor cmt_bytes throughout a run, not
    just the capacity computed at construction."""

    def test_resident_bytes_never_exceed_budget(self):
        device = small_dftl(cmt_pages=2)
        budget_pages = device.store.capacity_pages
        page_size = device.geometry.page_size
        n = device.logical_pages
        for lpn in range(n):
            device.write(lpn)
            assert device.store.resident_bytes <= budget_pages * page_size
        rng = make_rng(9)
        for _ in range(2000):
            device.write(int(rng.integers(0, n)))
            assert device.store.resident_bytes <= budget_pages * page_size
        assert device.store.peak_resident_bytes <= budget_pages * page_size
        assert device.store.peak_resident_bytes == budget_pages * page_size

    def test_peak_tracks_high_water_mark(self):
        device = small_dftl(cmt_pages=4)
        assert device.store.resident_bytes == 0
        device.write(0)
        assert device.store.resident_bytes == device.geometry.page_size
        assert device.store.peak_resident_bytes == device.geometry.page_size


class TestDemandPagedFTL:
    def test_full_cache_has_no_flash_overhead(self):
        device = small_dftl(cmt_pages=64)
        drive(device)
        # Misses are compulsory only, and a never-written translation
        # page has nothing to fetch from flash: zero translation I/O.
        assert device.store.stats.miss_reads == 0
        assert device.read_overhead_factor == pytest.approx(1.0)
        assert device.write_overhead_factor == pytest.approx(1.0)

    def test_starved_cache_pays_flash_reads(self):
        device = small_dftl(cmt_pages=1)
        drive(device)
        assert device.store.stats.miss_reads > 0
        assert device.read_overhead_factor > 1.5
        assert device.store.stats.hit_rate < 0.8

    def test_overhead_monotone_in_cache_size(self):
        overheads = []
        for pages in (1, 2, 4):
            device = small_dftl(cmt_pages=pages)
            drive(device, seed=1)
            overheads.append(device.read_overhead_factor)
        assert overheads == sorted(overheads, reverse=True)

    def test_translation_pages_live_on_flash(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=2000)
        gtd = device.store.gtd
        materialized = gtd[gtd >= 0]
        assert materialized.size > 0
        for ppn in materialized.tolist():
            assert device._oob_lpn[ppn] <= -2  # OOB-tagged as translation

    def test_wa_decomposition_separates_translation_traffic(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=4000)
        decomp = device.wa_decomposition()
        assert decomp.host_pages == device.stats.host_pages_written
        assert decomp.data_gc_pages == device.stats.gc_pages_copied
        assert decomp.translation_pages == device.store.stats.translation_writes
        assert decomp.translation_pages > 0
        assert decomp.device_wa > 1.0
        assert decomp.translation_factor > 0.0

    def test_data_path_unaffected(self):
        """The data path (mapping correctness, GC) is the plain FTL's."""
        device = small_dftl(cmt_pages=1, op_ratio=0.25)
        drive(device, ops=2000)
        device.check_invariants()
        for lpn in range(0, device.logical_pages, 97):
            device.read(lpn)

    def test_trim_counts_as_dirty_access(self):
        device = small_dftl(cmt_pages=1)
        device.write(0)
        device.trim(0)
        assert device.store.stats.lookups == 2

    def test_full_map_size_reported(self):
        device = small_dftl()
        per_page = device.store.entries_per_page
        expected = (device.logical_pages + per_page - 1) // per_page
        assert device.full_map_translation_pages == expected

    def test_invariants_hold_under_translation_gc(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=6000, seed=3)
        assert device.store.stats.gc_runs > 0
        device.check_invariants()


class TestCrashRecovery:
    def test_snapshot_recovery_restores_map_and_gtd(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=3000, seed=5)
        snapshot = device.snapshot_mapping()
        l2p = device.map.l2p.copy()
        gtd = device.store.gtd.copy()
        device.crash()
        device.recover(snapshot)
        assert np.array_equal(device.map.l2p, l2p)
        assert np.array_equal(device.store.gtd, gtd)
        device.check_invariants()

    def test_full_replay_rebuilds_gtd_from_oob(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=3000, seed=6)
        device.store.flush()
        gtd = device.store.gtd.copy()
        device.crash()
        device.recover(None)
        assert np.array_equal(device.store.gtd, gtd)
        device.check_invariants()

    def test_device_operates_after_recovery(self):
        device = small_dftl(cmt_pages=1)
        drive(device, ops=2000, seed=7)
        snapshot = device.snapshot_mapping()
        device.crash()
        device.recover(snapshot)
        drive(device, ops=1000, seed=8)
        device.check_invariants()
