"""Cross-package integration tests.

These exercise whole stacks end to end: the same trace against every
block-device implementation, the LSM store over the host-translated ZNS
stack (three layers deep), and the experiment harness against the devices
it claims to measure.
"""

import numpy as np
import pytest

from repro.apps.lsm import BlockFileBackend, LSMConfig, LSMStore
from repro.block.dmzoned import ZonedBlockConfig, ZonedBlockDevice
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.ftl.device import ConventionalSSD
from repro.ftl.ftl import FTLConfig
from repro.workloads.synthetic import read_write_mix
from repro.workloads.traces import replay_trace, synthesize_trace
from repro.zns.device import ZNSDevice


def all_block_devices():
    """One of each BlockDevice implementation, comparably sized."""
    ram = RamDisk(num_blocks=4096)
    conventional = ConventionalSSD(FlashGeometry.small(), FTLConfig(op_ratio=0.11))
    zoned = ZonedBlockDevice(
        ZNSDevice(ZonedGeometry.small()), ZonedBlockConfig(op_ratio=0.11)
    )
    return {"ramdisk": ram, "conventional": conventional, "zns+host": zoned}


class TestTraceAcrossDevices:
    def test_same_trace_same_counts_everywhere(self):
        ops = list(read_write_mix(2048, 6000, read_fraction=0.3, seed=0))
        trace = synthesize_trace(ops)
        results = {
            name: replay_trace(trace, device)
            for name, device in all_block_devices().items()
        }
        baseline = results["ramdisk"]
        for name, counts in results.items():
            assert counts == baseline, f"{name} diverged: {counts} vs {baseline}"

    def test_flash_devices_amplify_ram_does_not(self):
        ops = [("write", int(lba)) for lba in
               np.random.default_rng(1).integers(0, 2048, size=12_000)]
        trace = synthesize_trace(ops)
        devices = all_block_devices()
        for device in devices.values():
            replay_trace(trace, device)
        assert devices["ramdisk"].counters.writes == 12_000
        conventional = devices["conventional"]
        flash_writes = conventional.ftl.nand.counters.bytes_written // 4096
        assert flash_writes > 12_000  # GC copies on top of host writes


class TestLsmOverHostTranslation:
    """LSM -> BlockFileBackend -> ZonedBlockDevice -> ZNSDevice -> NAND."""

    def test_three_layer_stack_round_trips(self):
        zoned_layer = ZonedBlockDevice(
            ZNSDevice(ZonedGeometry.small()), ZonedBlockConfig(op_ratio=0.11)
        )
        store = LSMStore(
            BlockFileBackend(zoned_layer, trim_on_delete=True),
            LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8),
        )
        rng = np.random.default_rng(2)
        truth = {}
        for i in range(4000):
            key = int(rng.integers(0, 600))
            store.put(key, i)
            truth[key] = i
        for key, value in truth.items():
            assert store.get(key) == value
        zoned_layer.check_invariants()

    def test_wa_ledger_multiplies_across_layers(self):
        """user -> app (LSM) -> host (translation) -> flash bytes all line up."""
        from repro.metrics.wa import WriteAmpAccounting

        device = ZNSDevice(ZonedGeometry.small())
        zoned_layer = ZonedBlockDevice(device, ZonedBlockConfig(op_ratio=0.11))
        store = LSMStore(
            BlockFileBackend(zoned_layer, trim_on_delete=True),
            LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8),
        )
        rng = np.random.default_rng(3)
        for i in range(6000):
            store.put(int(rng.integers(0, 800)), i)

        ledger = WriteAmpAccounting()
        ledger.record_user(store.stats.user_bytes)
        ledger.record_app(store.stats.app_pages_written * 4096)
        host_pages = zoned_layer.stats.user_pages_written + zoned_layer.stats.gc_pages_copied
        ledger.record_host(host_pages * 4096)
        ledger.record_flash(device.nand.physical_bytes_written())
        breakdown = ledger.breakdown()
        assert breakdown.application > 1.0  # compaction + WAL
        assert breakdown.host >= 1.0  # translation reclaim
        assert breakdown.device >= 0.99  # thin FTL adds nothing
        # Product consistency: total equals flash/user directly.
        direct = device.nand.physical_bytes_written() / store.stats.user_bytes
        assert breakdown.total == pytest.approx(direct, rel=0.01)


class TestDeterminism:
    def test_experiments_are_seed_deterministic(self):
        from repro.experiments import run_experiment

        a = run_experiment("E8", quick=True, seed=5)
        b = run_experiment("E8", quick=True, seed=5)
        assert a.rows == b.rows
        c = run_experiment("E8", quick=True, seed=6)
        assert c.rows != a.rows  # and the seed actually matters

    def test_device_state_machines_deterministic(self):
        def run_once():
            layer = ZonedBlockDevice(
                ZNSDevice(ZonedGeometry.small()), ZonedBlockConfig(op_ratio=0.15)
            )
            rng = np.random.default_rng(7)
            n = layer.logical_pages
            for lba in range(n):
                layer.write(lba)
            for _ in range(n):
                layer.write(int(rng.integers(0, n)))
            return (
                layer.stats.gc_pages_copied,
                layer.stats.zones_reset,
                layer.device.nand.counters.bytes_written,
            )

        assert run_once() == run_once()
