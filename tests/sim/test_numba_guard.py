"""Guard: no module under ``src/repro`` may import numba unconditionally.

numba is an *optional* accelerator. The repo must import and run
everywhere numba is absent (CI runners, minimal installs), so the only
sanctioned import site is inside a ``try``/``except ImportError`` (or a
function body that handles the failure, as ``repro.sim.compiled`` does).
This test walks every source file's AST and fails on any ``import
numba`` / ``from numba import ...`` statement that executes
unconditionally at module scope.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent


def _module_scope_numba_imports(tree: ast.Module) -> list[int]:
    """Line numbers of numba imports reachable at plain module scope.

    Imports nested inside ``try`` blocks or function bodies are allowed:
    a ``try`` implies a handler, and a function defers the import until
    call time where the caller can catch it (``_load_numba`` pattern).
    """
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        else:
            continue
        if not any(name == "numba" or name.startswith("numba.") for name in names):
            continue
        offenders.append(node.lineno)
    # Now subtract imports that sit under a Try or inside a function.
    guarded = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    guarded.add(inner.lineno)
    return [line for line in offenders if line not in guarded]


def test_no_unconditional_numba_import_in_src():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for line in _module_scope_numba_imports(tree):
            offenders.append(f"{path.relative_to(SRC_ROOT.parent)}:{line}")
    assert not offenders, (
        "unconditional numba import(s) found (must be wrapped in "
        f"try/except or deferred into a function): {offenders}"
    )


def test_guard_catches_a_bare_import():
    """Self-test: the scanner actually flags the pattern it exists for."""
    bad = ast.parse("import numpy\nimport numba\n")
    assert _module_scope_numba_imports(bad) == [2]
    bad_from = ast.parse("from numba import njit\n")
    assert _module_scope_numba_imports(bad_from) == [1]


def test_guard_allows_guarded_imports():
    ok = ast.parse(
        "def _load():\n"
        "    try:\n"
        "        import numba\n"
        "    except ImportError:\n"
        "        return None\n"
        "    return numba\n"
    )
    assert _module_scope_numba_imports(ok) == []
