"""Unit tests for the DES engine: events, timeouts, processes."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def proc(eng):
        yield Timeout(eng, 3.0)
        times.append(eng.now)
        yield Timeout(eng, 4.5)
        times.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert times == [3.0, 7.5]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        Timeout(eng, -1.0)


def test_timeout_carries_value():
    eng = Engine()
    got = []

    def proc(eng):
        value = yield Timeout(eng, 1.0, value="payload")
        got.append(value)

    eng.process(proc(eng))
    eng.run()
    assert got == ["payload"]


def test_process_return_value_via_run_until():
    eng = Engine()

    def proc(eng):
        yield Timeout(eng, 2.0)
        return 99

    p = eng.process(proc(eng))
    assert eng.run(until=p) == 99


def test_events_process_in_time_order():
    eng = Engine()
    order = []

    def proc(eng, delay, tag):
        yield Timeout(eng, delay)
        order.append(tag)

    eng.process(proc(eng, 5.0, "b"))
    eng.process(proc(eng, 1.0, "a"))
    eng.process(proc(eng, 9.0, "c"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    eng = Engine()
    order = []

    def proc(eng, tag):
        yield Timeout(eng, 1.0)
        order.append(tag)

    for tag in range(10):
        eng.process(proc(eng, tag))
    eng.run()
    assert order == list(range(10))


def test_run_until_time_stops_early():
    eng = Engine()
    fired = []

    def proc(eng):
        yield Timeout(eng, 10.0)
        fired.append(True)

    eng.process(proc(eng))
    eng.run(until=5.0)
    assert not fired
    assert eng.now == 5.0
    eng.run()
    assert fired


def test_run_until_past_time_rejected():
    eng = Engine()
    eng.run(until=5.0)
    with pytest.raises(SimulationError):
        eng.run(until=1.0)


def test_process_waits_on_process():
    eng = Engine()

    def child(eng):
        yield Timeout(eng, 3.0)
        return "child-result"

    def parent(eng):
        result = yield eng.process(child(eng))
        return (eng.now, result)

    p = eng.process(parent(eng))
    assert eng.run(until=p) == (3.0, "child-result")


def test_event_succeed_resumes_waiter():
    eng = Engine()
    gate = Event(eng)
    got = []

    def waiter(eng, gate):
        value = yield gate
        got.append((eng.now, value))

    def opener(eng, gate):
        yield Timeout(eng, 7.0)
        gate.succeed("open")

    eng.process(waiter(eng, gate))
    eng.process(opener(eng, gate))
    eng.run()
    assert got == [(7.0, "open")]


def test_event_double_trigger_rejected():
    eng = Engine()
    event = Event(eng)
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_throws_into_waiter():
    eng = Engine()
    gate = Event(eng)
    caught = []

    def waiter(eng, gate):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(waiter(eng, gate))
    gate.fail(ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_event_fail_requires_exception_instance():
    eng = Engine()
    with pytest.raises(TypeError):
        Event(eng).fail("not an exception")


def test_failed_process_raises_from_run_until():
    eng = Engine()

    def bad(eng):
        yield Timeout(eng, 1.0)
        raise RuntimeError("process died")

    p = eng.process(bad(eng))
    with pytest.raises(RuntimeError, match="process died"):
        eng.run(until=p)


def test_step_on_empty_queue_is_simulation_error():
    eng = Engine()
    with pytest.raises(SimulationError, match="empty event queue"):
        eng.step()


def test_step_after_queue_drained_is_simulation_error():
    eng = Engine()
    Timeout(eng, 1.0)
    eng.step()  # consumes the only event
    with pytest.raises(SimulationError, match="empty event queue"):
        eng.step()


def test_yielding_non_event_is_error():
    eng = Engine()

    def bad(eng):
        yield 42

    eng.process(bad(eng))
    with pytest.raises(SimulationError, match="must yield Event"):
        eng.run()


def test_interrupt_is_catchable():
    eng = Engine()
    log = []

    def sleeper(eng):
        try:
            yield Timeout(eng, 100.0)
            log.append("slept")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, eng.now))

    def interrupter(eng, victim):
        yield Timeout(eng, 2.0)
        victim.interrupt("wake up")

    victim = eng.process(sleeper(eng))
    eng.process(interrupter(eng, victim))
    eng.run()
    assert log == [("interrupted", "wake up", 2.0)]


def test_interrupt_finished_process_rejected():
    eng = Engine()

    def quick(eng):
        yield Timeout(eng, 1.0)

    p = eng.process(quick(eng))
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_everything():
    eng = Engine()

    def worker(eng, delay):
        yield Timeout(eng, delay)
        return delay

    def parent(eng):
        children = [eng.process(worker(eng, d)) for d in (3.0, 1.0, 2.0)]
        results = yield AllOf(eng, children)
        return (eng.now, results)

    p = eng.process(parent(eng))
    assert eng.run(until=p) == (3.0, [3.0, 1.0, 2.0])


def test_all_of_empty_fires_immediately():
    eng = Engine()

    def parent(eng):
        results = yield AllOf(eng, [])
        return results

    p = eng.process(parent(eng))
    assert eng.run(until=p) == []


def test_any_of_returns_first():
    eng = Engine()

    def worker(eng, delay):
        yield Timeout(eng, delay)
        return delay

    def parent(eng):
        children = [eng.process(worker(eng, d)) for d in (3.0, 1.0, 2.0)]
        first = yield AnyOf(eng, children)
        return (eng.now, first.value)

    p = eng.process(parent(eng))
    assert eng.run(until=p) == (1.0, 1.0)


def test_run_until_event_never_triggered_is_error():
    eng = Engine()
    orphan = Event(eng)
    with pytest.raises(SimulationError, match="drained"):
        eng.run(until=orphan)


def test_processed_event_count_increments():
    eng = Engine()

    def proc(eng):
        yield Timeout(eng, 1.0)

    eng.process(proc(eng))
    eng.run()
    assert eng.processed_events > 0


def test_yield_already_processed_event_resumes_immediately():
    eng = Engine()
    done = []

    def proc(eng, ready):
        value = yield ready  # was processed before we yielded it
        done.append((eng.now, value))

    ready = Event(eng)
    ready.succeed("early")
    eng.run()  # processes `ready`
    eng.process(proc(eng, ready))
    eng.run()
    assert done == [(0.0, "early")]


def test_all_of_propagates_first_failure():
    eng = Engine()

    def good(eng):
        yield Timeout(eng, 1.0)
        return "ok"

    def bad(eng):
        yield Timeout(eng, 2.0)
        raise ValueError("child died")

    def parent(eng):
        children = [eng.process(good(eng)), eng.process(bad(eng))]
        try:
            yield AllOf(eng, children)
        except ValueError as exc:
            return f"caught {exc}"

    p = eng.process(parent(eng))
    assert eng.run(until=p) == "caught child died"


def test_any_of_failure_propagates():
    eng = Engine()

    def bad(eng):
        yield Timeout(eng, 1.0)
        raise ValueError("fast failure")

    def slow(eng):
        yield Timeout(eng, 100.0)
        return "slow"

    def parent(eng):
        children = [eng.process(bad(eng)), eng.process(slow(eng))]
        try:
            yield AnyOf(eng, children)
        except ValueError:
            return "propagated"

    p = eng.process(parent(eng))
    assert eng.run(until=p) == "propagated"
    eng.run()  # the slow child still completes harmlessly


def test_engine_peek():
    eng = Engine()
    assert eng.peek() == float("inf")
    Timeout(eng, 5.0)
    assert eng.peek() == 5.0


def test_factory_helpers():
    eng = Engine()
    event = eng.event()
    timeout = eng.timeout(1.0, value="v")
    assert isinstance(event, Event)
    got = []

    def proc(eng):
        value = yield timeout
        got.append(value)

    eng.process(proc(eng))
    eng.run()
    assert got == ["v"]
