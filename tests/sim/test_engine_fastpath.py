"""Engine scheduling fast paths: FIFO lane, event pooling, run(until=number).

The PR added a same-time FIFO lane for zero-delay events, recycling
pools for engine-internal events and ``sleep()`` timeouts, and an
inlined numeric ``run(until=...)`` that allocates no sentinel event.
These tests pin the semantics those optimizations must preserve: exact
global (time, creation-order) processing order, unchanged
``processed_events`` accounting, and safe object reuse.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, Interrupt, SimulationError, Timeout


class TestFifoLaneOrdering:
    def test_zero_delay_fires_before_later_heap_events(self):
        engine = Engine()
        order = []
        Timeout(engine, 0.0).callbacks.append(lambda e: order.append("zero"))
        Timeout(engine, 1.0).callbacks.append(lambda e: order.append("one"))
        engine.run()
        assert order == ["zero", "one"]

    def test_same_time_heap_and_fifo_interleave_in_creation_order(self):
        """A heap event at t=5 created early beats a zero-delay created at t=5."""
        engine = Engine()
        order = []

        def spawn_zero(_event):
            order.append("a")
            Timeout(engine, 0.0).callbacks.append(lambda e: order.append("c"))

        Timeout(engine, 5.0).callbacks.append(spawn_zero)
        Timeout(engine, 5.0).callbacks.append(lambda e: order.append("b"))
        engine.run()
        # "b" was scheduled (t=5, seq=1) before "c" existed (t=5, seq=2),
        # so the heap entry must drain before the FIFO entry.
        assert order == ["a", "b", "c"]

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.sampled_from([0.0, 0.0, 1.0, 2.0, 3.0]), min_size=1, max_size=40
        )
    )
    def test_processing_order_is_time_then_creation_order(self, delays):
        """Mixed zero/positive delays process in exact (time, seq) order."""
        engine = Engine()
        fired = []
        for index, delay in enumerate(delays):
            Timeout(engine, delay, value=index).callbacks.append(
                lambda event: fired.append(event.value)
            )
        engine.run()
        expected = [
            index
            for index, _ in sorted(enumerate(delays), key=lambda pair: (pair[1], pair[0]))
        ]
        assert fired == expected

    def test_peek_sees_fifo_head(self):
        engine = Engine()
        Timeout(engine, 3.0)
        assert engine.peek() == 3.0
        Timeout(engine, 0.0)
        assert engine.peek() == 0.0

    def test_step_drains_fifo_and_heap(self):
        engine = Engine()
        Timeout(engine, 0.0)
        Timeout(engine, 1.0)
        engine.step()
        engine.step()
        assert engine.now == 1.0
        try:
            engine.step()
            raise AssertionError("expected SimulationError on empty queue")
        except SimulationError:
            pass

    def test_run_until_event_pending_in_fifo(self):
        """run(until=event) must see work sitting only in the FIFO lane."""
        engine = Engine()

        def proc():
            yield engine.sleep(0.0)
            return 42

        assert engine.run(until=engine.process(proc())) == 42

    def test_interrupt_travels_through_fifo(self):
        engine = Engine()
        caught = []

        def sleeper():
            try:
                yield Timeout(engine, 100.0)
            except Interrupt as exc:
                caught.append((engine.now, exc.cause))

        victim = engine.process(sleeper())

        def interrupter():
            yield Timeout(engine, 2.0)
            victim.interrupt("wake")

        engine.process(interrupter())
        engine.run()
        assert caught == [(2.0, "wake")]


class TestEventPooling:
    def test_sleep_recycles_timeout_objects(self):
        engine = Engine()
        seen = []

        def proc():
            # The generator resumes *during* each timeout's processing,
            # before the engine recycles it, so the reuse shows up one
            # yield later: the third sleep gets the first's object.
            for delay in (1.0, 2.0, 3.0):
                timeout = engine.sleep(delay)
                seen.append(timeout)
                yield timeout

        engine.process(proc())
        engine.run()
        assert engine.now == 6.0
        assert seen[2] is seen[0]  # the processed timeout was reused

    def test_sleep_matches_timeout_semantics(self):
        engine = Engine()
        values = []

        def proc():
            values.append((yield engine.sleep(1.5, value="a")))
            values.append((yield Timeout(engine, 0.5, value="b")))
            values.append((yield engine.sleep(0.0, value="c")))

        engine.process(proc())
        engine.run()
        assert values == ["a", "b", "c"]
        assert engine.now == 2.0

    def test_pooled_sleep_rejects_negative_delay(self):
        engine = Engine()

        def proc():
            yield engine.sleep(0.0)

        engine.process(proc())
        engine.run()  # puts a timeout into the pool
        try:
            engine.sleep(-1.0)
            raise AssertionError("expected SimulationError")
        except SimulationError:
            pass

    def test_plain_events_are_never_recycled(self):
        engine = Engine()
        event = engine.event()
        event.succeed("kept")
        engine.run()
        assert event.value == "kept"
        assert event.processed
        assert event is not engine._acquire_event()


class TestRunUntilNumber:
    def test_processed_events_accounting_unchanged(self):
        """The sentinel-free numeric horizon counts only real events."""
        engine = Engine()
        for delay in (1.0, 2.0, 3.0):
            Timeout(engine, delay)
        engine.run(until=2.5)
        assert engine.processed_events == 2
        assert engine.now == 2.5
        engine.run()
        assert engine.processed_events == 3
        assert engine.now == 3.0

    def test_horizon_exactly_on_event_time_includes_it(self):
        engine = Engine()
        Timeout(engine, 2.0)
        engine.run(until=2.0)
        assert engine.processed_events == 1
        assert engine.now == 2.0

    def test_zero_horizon_drains_zero_delay_events(self):
        engine = Engine()
        fired = []
        Timeout(engine, 0.0).callbacks.append(lambda e: fired.append(True))
        engine.run(until=0.0)
        assert fired == [True]
        assert engine.processed_events == 1

    def test_counts_match_step_by_step_run(self):
        def build():
            engine = Engine()

            def proc():
                for _ in range(10):
                    yield engine.sleep(0.0)
                    yield engine.sleep(1.0)

            engine.process(proc())
            return engine

        stepped = build()
        while True:
            try:
                stepped.step()
            except SimulationError:
                break
        horizon = build()
        horizon.run(until=1e9)
        full = build()
        full.run()
        assert (
            stepped.processed_events
            == horizon.processed_events
            == full.processed_events
        )

    def test_past_horizon_rejected(self):
        engine = Engine()
        Timeout(engine, 5.0)
        engine.run()
        try:
            engine.run(until=1.0)
            raise AssertionError("expected SimulationError")
        except SimulationError:
            pass
