"""Unit tests for FCFS and priority resources."""

import pytest

from repro.sim.engine import Engine, SimulationError, Timeout
from repro.sim.resources import PriorityResource, Resource


def hold(eng, res, duration, log, tag, priority=0.0):
    req = yield res.request(priority)
    log.append(("start", tag, eng.now))
    yield Timeout(eng, duration)
    res.release(req)
    log.append(("end", tag, eng.now))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Resource(Engine(), capacity=0)


def test_single_slot_serializes():
    eng = Engine()
    res = Resource(eng)
    log = []
    eng.process(hold(eng, res, 10.0, log, "a"))
    eng.process(hold(eng, res, 10.0, log, "b"))
    eng.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 10.0),
        ("start", "b", 10.0),
        ("end", "b", 20.0),
    ]


def test_two_slots_run_in_parallel():
    eng = Engine()
    res = Resource(eng, capacity=2)
    log = []
    for tag in ("a", "b", "c"):
        eng.process(hold(eng, res, 10.0, log, tag))
    eng.run()
    starts = {tag: t for kind, tag, t in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 10.0}


def test_fcfs_ordering():
    eng = Engine()
    res = Resource(eng)
    log = []

    def arrive(eng, delay, tag):
        yield Timeout(eng, delay)
        yield from hold(eng, res, 5.0, log, tag)

    eng.process(arrive(eng, 0.0, "first"))
    eng.process(arrive(eng, 1.0, "second"))
    eng.process(arrive(eng, 2.0, "third"))
    eng.run()
    order = [tag for kind, tag, _ in log if kind == "start"]
    assert order == ["first", "second", "third"]


def test_priority_resource_reorders_queue():
    eng = Engine()
    res = PriorityResource(eng)
    log = []

    def arrive(eng, delay, tag, prio):
        yield Timeout(eng, delay)
        yield from hold(eng, res, 5.0, log, tag, priority=prio)

    eng.process(arrive(eng, 0.0, "holder", 0.0))
    eng.process(arrive(eng, 1.0, "low-prio", 5.0))
    eng.process(arrive(eng, 2.0, "high-prio", 0.0))
    eng.run()
    order = [tag for kind, tag, _ in log if kind == "start"]
    # high-prio arrived later but overtakes low-prio in the queue.
    assert order == ["holder", "high-prio", "low-prio"]


def test_priority_is_non_preemptive():
    eng = Engine()
    res = PriorityResource(eng)
    log = []

    def arrive(eng, delay, tag, prio):
        yield Timeout(eng, delay)
        yield from hold(eng, res, 100.0, log, tag, priority=prio)

    eng.process(arrive(eng, 0.0, "long-low", 9.0))
    eng.process(arrive(eng, 1.0, "urgent", 0.0))
    eng.run()
    # The running low-priority holder finishes before urgent starts.
    assert log[0] == ("start", "long-low", 0.0)
    assert ("start", "urgent", 100.0) in log


def test_release_without_grant_rejected():
    eng = Engine()
    res = Resource(eng)
    req = res.request()
    eng.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_cancel_queued_request_skipped_at_grant():
    eng = Engine()
    res = Resource(eng)
    log = []

    def holder(eng):
        req = yield res.request()
        yield Timeout(eng, 10.0)
        res.release(req)

    eng.process(holder(eng))
    eng.run(until=1.0)
    queued = res.request()  # waits behind holder
    res.cancel(queued)
    eng.process(hold(eng, res, 5.0, log, "after-cancel"))
    eng.run()
    assert ("start", "after-cancel", 10.0) in log


def test_cancel_granted_request_rejected():
    eng = Engine()
    res = Resource(eng)
    req = res.request()
    eng.run()
    with pytest.raises(SimulationError):
        res.cancel(req)


def test_wait_accounting():
    eng = Engine()
    res = Resource(eng)
    log = []
    eng.process(hold(eng, res, 10.0, log, "a"))
    eng.process(hold(eng, res, 10.0, log, "b"))
    eng.run()
    assert res.total_grants == 2
    assert res.mean_wait() == pytest.approx(5.0)  # (0 + 10) / 2


def test_queue_length_visible():
    eng = Engine()
    res = Resource(eng)
    log = []
    for tag in range(4):
        eng.process(hold(eng, res, 10.0, log, tag))
    eng.run(until=1.0)
    assert res.queue_length == 3
    assert res.count == 1
