"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.sim.rng import make_rng, spawn_rngs


def test_make_rng_from_seed_is_deterministic():
    a = make_rng(42)
    b = make_rng(42)
    assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)


def test_make_rng_passes_generator_through():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_make_rng_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_spawn_rngs_independent_streams():
    streams = spawn_rngs(123, 3)
    assert len(streams) == 3
    draws = [g.integers(0, 1 << 60) for g in streams]
    assert len(set(draws)) == 3  # astronomically unlikely to collide


def test_spawn_rngs_reproducible():
    a = spawn_rngs(5, 2)
    b = spawn_rngs(5, 2)
    for ga, gb in zip(a, b):
        assert ga.integers(0, 1 << 30) == gb.integers(0, 1 << 30)


def test_spawn_rngs_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
