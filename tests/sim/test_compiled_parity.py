"""Parity suite for the epoch-compiled kernels (:mod:`repro.sim.compiled`).

The contract under test is *state identity*: every kernel must leave the
mapping/flash/zone state bit-for-bit equal to the interpreted scalar
path it replaces, over randomized operation sequences, both with the
numba fast path enabled (when numba is installed) and with numba
monkeypatched absent. On a numba-less environment the enabled leg
degrades to the numpy fallbacks, so the suite stays meaningful either
way -- and CI runs it as-is on both kinds of runner.
"""

import importlib
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.flash.nand import NandArray
from repro.ftl.ftl import ConventionalFTL, FTLConfig
from repro.ftl.mapping import UNMAPPED, PageMap
from repro.sim import compiled
from repro.zns.device import ZNSDevice

GEOMETRY = FlashGeometry.small()
PPB = GEOMETRY.pages_per_block


def force_numpy_fallback(monkeypatch):
    monkeypatch.setattr(compiled, "USE_NUMBA", False)


@pytest.fixture(params=["dispatch", "numpy-fallback"])
def kernel_mode(request, monkeypatch):
    """Run each parity test twice: normal dispatch and forced fallback."""
    if request.param == "numpy-fallback":
        force_numpy_fallback(monkeypatch)
    return request.param


def map_states(m: PageMap):
    return (m.l2p.copy(), m.p2l.copy(), m.valid_counts.copy(), m.mapped_pages)


def assert_maps_equal(a: PageMap, b: PageMap):
    sa, sb = map_states(a), map_states(b)
    assert np.array_equal(sa[0], sb[0]), "l2p diverged"
    assert np.array_equal(sa[1], sb[1]), "p2l diverged"
    assert np.array_equal(sa[2], sb[2]), "valid_counts diverged"
    assert sa[3] == sb[3], "mapped_pages diverged"


class TestModuleFlags:
    def test_unmapped_sentinel_matches_mapping_module(self):
        assert compiled.UNMAPPED == UNMAPPED

    def test_enabled_reflects_use_numba(self, monkeypatch):
        monkeypatch.setattr(compiled, "USE_NUMBA", False)
        assert not compiled.enabled()

    def test_env_knob_disables_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert compiled._load_numba() is None

    def test_reload_with_numba_monkeypatched_absent(self, monkeypatch):
        """The module must import cleanly when numba cannot be imported."""
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        fresh = importlib.reload(compiled)
        try:
            assert not fresh.NUMBA_AVAILABLE
            assert not fresh.enabled()
            l2p = np.full(8, UNMAPPED, dtype=np.int64)
            p2l = np.full(GEOMETRY.total_pages, UNMAPPED, dtype=np.int64)
            counts = np.zeros(GEOMETRY.total_blocks, dtype=np.int32)
            delta = fresh.map_batch_apply(
                l2p, p2l, counts,
                np.array([1, 3, 1], dtype=np.int64),
                np.array([0, 1, 2], dtype=np.int64),
                0, PPB,
            )
            assert delta == 2
            assert l2p[1] == 2 and l2p[3] == 1
        finally:
            importlib.reload(compiled)


class TestMapBatchParity:
    @given(
        lpns=st.lists(st.integers(0, 63), min_size=1, max_size=PPB),
        premap=st.integers(0, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_scalar_map_loop(self, kernel_mode, lpns, premap, seed):
        rng = np.random.default_rng(seed)
        scalar = PageMap(GEOMETRY, 64)
        batched = PageMap(GEOMETRY, 64)
        # Pre-populate both maps identically from a different block so the
        # batch can invalidate cross-block prior mappings.
        pre_block = 1
        pre_lpns = rng.choice(64, size=premap * 4, replace=False) if premap else []
        for i, lpn in enumerate(pre_lpns):
            scalar.map(int(lpn), pre_block * PPB + i)
            batched.map(int(lpn), pre_block * PPB + i)
        ppns = np.arange(2 * PPB, 2 * PPB + len(lpns), dtype=np.int64)
        arr = np.asarray(lpns, dtype=np.int64)
        for lpn, ppn in zip(arr.tolist(), ppns.tolist()):
            scalar.map(lpn, ppn)
        batched.map_batch(arr, ppns)
        assert_maps_equal(scalar, batched)

    def test_negative_valid_count_raises(self, kernel_mode):
        m = PageMap(GEOMETRY, 16)
        m.map(0, 5)
        m.valid_counts[0] = 0  # corrupt: the remap below must detect it
        with pytest.raises(ValueError, match="negative"):
            m.map_batch(
                np.array([0, 1], dtype=np.int64),
                np.array([PPB, PPB + 1], dtype=np.int64),
            )


class TestRelocateRunParity:
    @given(
        nvalid=st.integers(1, PPB),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_scalar_relocate_loop(self, kernel_mode, nvalid, seed):
        rng = np.random.default_rng(seed)
        scalar = PageMap(GEOMETRY, PPB)
        run = PageMap(GEOMETRY, PPB)
        src_offsets = np.sort(rng.choice(PPB, size=nvalid, replace=False))
        src_block, dst_block = 0, 3
        for i, off in enumerate(src_offsets.tolist()):
            scalar.map(i, src_block * PPB + off)
            run.map(i, src_block * PPB + off)
        src_pages = src_block * PPB + src_offsets.astype(np.int64)
        dst_first = dst_block * PPB
        for i, src in enumerate(src_pages.tolist()):
            scalar.relocate(src, dst_first + i)
        run.relocate_run(src_pages, dst_first)
        assert_maps_equal(scalar, run)

    def test_invalid_source_raises(self, kernel_mode):
        m = PageMap(GEOMETRY, 8)
        m.map(0, 0)
        with pytest.raises(ValueError, match="invalid physical page"):
            m.relocate_run(np.array([0, 1], dtype=np.int64), 3 * PPB)


class TestCopyRunParity:
    def _programmed_nand(self):
        nand = NandArray(GEOMETRY)
        nand.program_run(0, PPB)
        return nand

    @given(nsrc=st.integers(1, PPB), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_matches_copy_batch(self, nsrc, seed):
        rng = np.random.default_rng(seed)
        src = np.sort(rng.choice(PPB, size=nsrc, replace=False)).astype(np.int64)
        a, b = self._programmed_nand(), self._programmed_nand()
        dst_block = 2
        dst = dst_block * PPB + np.arange(nsrc, dtype=np.int64)
        lat_a = a.copy_batch(src, dst)
        lat_b = b.copy_run(src, dst_block, 0)
        assert lat_a == lat_b
        assert np.array_equal(a.write_offsets, b.write_offsets)
        assert a.counters.copies == b.counters.copies
        assert a.counters.bytes_copied == b.counters.bytes_copied

    def test_rejects_out_of_order_destination(self):
        nand = self._programmed_nand()
        from repro.flash.errors import ProgramOrderError

        with pytest.raises(ProgramOrderError):
            nand.copy_run(np.array([0, 1], dtype=np.int64), 2, 5)

    def test_rejects_multi_block_sources(self):
        nand = self._programmed_nand()
        nand.program_run(1, 2)
        with pytest.raises(ValueError, match="one block"):
            nand.copy_run(np.array([0, PPB + 1], dtype=np.int64), 2, 0)


class TestStripeLayout:
    @given(
        wp=st.integers(0, 4 * PPB - 1),
        n=st.integers(1, 2 * PPB),
        width=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_per_page_striping(self, wp, n, width):
        ppb = PPB
        if (wp + n - 1) // width >= ppb:
            with pytest.raises(IndexError):
                compiled.stripe_layout(wp, n, width, ppb)
            return
        lanes, first_offsets, counts = compiled.stripe_layout(wp, n, width, ppb)
        # Scalar reference: page offset j lands on lane j % width at
        # within-block offset j // width.
        per_lane: dict[int, list[int]] = {}
        for j in range(wp, wp + n):
            per_lane.setdefault(j % width, []).append(j // width)
        assert sorted(per_lane) == lanes.tolist()
        for lane, first, count in zip(
            lanes.tolist(), first_offsets.tolist(), counts.tolist()
        ):
            offsets = per_lane[lane]
            assert offsets == list(range(first, first + count))

    def test_rejects_empty_run(self):
        with pytest.raises(ValueError):
            compiled.stripe_layout(0, 0, 4, PPB)


class TestFTLEpochParity:
    """The collector's epoch compaction against the per-page scalar FTL."""

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_write_pages_matches_scalar_writes(self, kernel_mode, seed):
        config = FTLConfig(
            op_ratio=0.12, gc_policy="greedy",
            gc_low_watermark=1, gc_high_watermark=2,
        )
        scalar = ConventionalFTL(GEOMETRY, config)
        batched = ConventionalFTL(GEOMETRY, config)
        n = scalar.logical_pages
        rng = np.random.default_rng(seed)
        phases = [
            np.arange(n, dtype=np.int64),
            rng.integers(0, n, size=n, dtype=np.int64),
        ]
        for phase in phases:
            for lpn in phase.tolist():
                scalar.write(lpn)
            batched.write_pages(phase)
        assert_maps_equal(scalar.map, batched.map)
        assert scalar.stats == batched.stats
        assert scalar._free == batched._free
        assert scalar._sealed == batched._sealed
        assert np.array_equal(
            scalar.nand.write_offsets, batched.nand.write_offsets
        )
        assert np.array_equal(scalar._oob_lpn, batched._oob_lpn)
        assert np.array_equal(scalar._oob_serial, batched._oob_serial)
        scalar.check_invariants()
        batched.check_invariants()


@st.composite
def _append_records(draw):
    n = draw(st.integers(1, 40))
    zones = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
    counts = draw(st.lists(st.integers(1, 8), min_size=n, max_size=n))
    return zones, counts


class TestZnsEpochParity:
    """append_epoch against the per-record append_batch state machine."""

    @given(records=_append_records())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_append_batch(self, kernel_mode, records):
        zones, counts = records
        geometry = ZonedGeometry(
            flash=GEOMETRY, blocks_per_zone=2, max_active_zones=14
        )
        capacity = geometry.pages_per_zone
        fill = {z: 0 for z in range(geometry.zone_count)}
        usable = []
        for z, k in zip(zones, counts):
            if fill[z] + k <= capacity:
                usable.append((z, k))
                fill[z] += k
        if not usable:
            return
        zone_arr = np.array([z for z, _ in usable], dtype=np.int64)
        count_arr = np.array([k for _, k in usable], dtype=np.int64)

        ref = ZNSDevice(geometry)
        epoch = ZNSDevice(geometry)
        want = [ref.append_batch(int(z), int(k)) for z, k in usable]
        got = epoch.append_epoch(zone_arr, count_arr)
        assert got.tolist() == want
        assert [z.state for z in ref.zones] == [z.state for z in epoch.zones]
        assert [z.wp for z in ref.zones] == [z.wp for z in epoch.zones]
        assert ref._open_order == epoch._open_order
        assert ref.open_count == epoch.open_count
        assert ref.active_count == epoch.active_count
        assert np.array_equal(
            ref.nand.write_offsets, epoch.nand.write_offsets
        )
        assert ref.counters.writes == epoch.counters.writes
        assert ref.counters.bytes_written == epoch.counters.bytes_written
        assert ref.nand.counters.writes == epoch.nand.counters.writes

    def test_empty_epoch_is_a_no_op(self, kernel_mode):
        device = ZNSDevice(ZonedGeometry(flash=GEOMETRY, blocks_per_zone=2))
        out = device.append_epoch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert out.size == 0
        assert device.counters.writes == 0


def _random_cmt(rng, capacity: int, ntvpns: int):
    """Random CMT slot-array state with unique stamps, like a live cache."""
    tvpn_slot = np.full(ntvpns, UNMAPPED, dtype=np.int64)
    slot_tvpn = np.full(capacity, UNMAPPED, dtype=np.int64)
    slot_dirty = np.zeros(capacity, dtype=np.int8)
    used = int(rng.integers(0, capacity + 1))
    resident = rng.choice(ntvpns, size=used, replace=False)
    for slot, tvpn in enumerate(resident.tolist()):
        tvpn_slot[tvpn] = slot
        slot_tvpn[slot] = tvpn
        slot_dirty[slot] = int(rng.integers(0, 2))
    # One monotonic counter stamps every insert/hit, so live stamps are
    # unique; empty slots keep stale stamps, which the kernels ignore.
    slot_stamp = rng.permutation(capacity).astype(np.int64)
    return tvpn_slot, slot_tvpn, slot_dirty, slot_stamp


class TestCmtProbeParity:
    @given(
        capacity=st.integers(1, 12),
        ntvpns=st.integers(12, 48),
        ngroups=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_scalar_probe_loop(
        self, kernel_mode, capacity, ntvpns, ngroups, seed
    ):
        rng = np.random.default_rng(seed)
        tvpn_slot, _slot_tvpn, slot_dirty, slot_stamp = _random_cmt(
            rng, capacity, ntvpns
        )
        tvpns = rng.choice(ntvpns, size=min(ngroups, ntvpns), replace=False).astype(
            np.int64
        )
        counts = rng.integers(1, 9, size=tvpns.size).astype(np.int64)
        start = int(rng.integers(0, tvpns.size))
        stamp = int(slot_stamp.max()) + 1

        ref_slot_dirty = slot_dirty.copy()
        ref_slot_stamp = slot_stamp.copy()
        ref_consumed, ref_stamp = compiled._cmt_probe_loop(
            tvpn_slot.copy(), ref_slot_dirty, ref_slot_stamp,
            tvpns, counts, start, stamp,
        )
        consumed, next_stamp = compiled.cmt_probe_batch(
            tvpn_slot, slot_dirty, slot_stamp, tvpns, counts, start, stamp
        )
        assert consumed == ref_consumed
        assert next_stamp == ref_stamp
        assert np.array_equal(slot_dirty, ref_slot_dirty), "dirty bits diverged"
        assert np.array_equal(slot_stamp, ref_slot_stamp), "LRU stamps diverged"
        # The first unconsumed group (if any) really is a miss.
        if start + consumed < tvpns.size:
            assert tvpn_slot[tvpns[start + consumed]] == UNMAPPED

    def test_start_past_end_is_a_no_op(self, kernel_mode):
        tvpn_slot = np.full(4, UNMAPPED, dtype=np.int64)
        consumed, stamp = compiled.cmt_probe_batch(
            tvpn_slot, np.zeros(2, dtype=np.int8), np.zeros(2, dtype=np.int64),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0, 7,
        )
        assert (consumed, stamp) == (0, 7)


class TestCmtEvictParity:
    @given(
        capacity=st.integers(1, 16),
        ntvpns=st.integers(16, 64),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_scalar_evict_loop(self, kernel_mode, capacity, ntvpns, seed):
        rng = np.random.default_rng(seed)
        _tvpn_slot, slot_tvpn, slot_dirty, slot_stamp = _random_cmt(
            rng, capacity, ntvpns
        )
        ref_dirty = slot_dirty.copy()
        ref = compiled._cmt_evict_loop(slot_tvpn.copy(), ref_dirty, slot_stamp.copy())
        got = compiled.cmt_evict_batch(slot_tvpn, slot_dirty, slot_stamp)
        assert got.tolist() == ref.tolist()
        assert np.array_equal(slot_dirty, ref_dirty), "dirty bits diverged"
        # Selected tvpns come back LRU-ascending and all dirty bits clear.
        if got.size:
            stamps = slot_stamp[[int(np.flatnonzero(slot_tvpn == t)[0]) for t in got]]
            assert np.all(np.diff(stamps) > 0)
        occupied = slot_tvpn >= 0
        assert not slot_dirty[occupied].any()
