"""Shared fixtures: keep every test hermetic with respect to the result cache."""

import pytest

from repro.exec.cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the result cache at a per-test directory.

    The CLI caches by default; without this, test runs would read and
    write the developer's real ``~/.cache/zns-repro`` and a warm cache
    would change observable output ("cached" vs "finished in").
    """
    cache_dir = tmp_path / "zns-repro-cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
    return cache_dir
