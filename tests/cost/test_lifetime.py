"""Tests for the device-lifetime/endurance model."""

import pytest

from repro.cost.lifetime import estimate, lifetime_years, qlc_enablement_table
from repro.flash.cells import CellType


class TestLifetimeYears:
    def test_basic_arithmetic(self):
        # 3000 cycles at 1 DWPD, WA 1, no OP -> 3000 days ~ 8.2 years.
        years = lifetime_years(CellType.TLC, write_amplification=1.0, dwpd=1.0)
        assert years == pytest.approx(3000 / 365, rel=1e-6)

    def test_wa_divides_lifetime(self):
        base = lifetime_years(CellType.TLC, 1.0)
        halved = lifetime_years(CellType.TLC, 2.0)
        assert halved == pytest.approx(base / 2)

    def test_dwpd_divides_lifetime(self):
        light = lifetime_years(CellType.QLC, 1.0, dwpd=0.5)
        heavy = lifetime_years(CellType.QLC, 1.0, dwpd=2.0)
        assert light == pytest.approx(4 * heavy)

    def test_op_credit_extends_lifetime(self):
        plain = lifetime_years(CellType.TLC, 2.0, op_ratio=0.0)
        padded = lifetime_years(CellType.TLC, 2.0, op_ratio=0.28)
        assert padded == pytest.approx(plain * 1.28)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            lifetime_years(CellType.TLC, 0.5)
        with pytest.raises(ValueError):
            lifetime_years(CellType.TLC, 1.0, dwpd=0)
        with pytest.raises(ValueError):
            lifetime_years(CellType.TLC, 1.0, op_ratio=-0.1)

    def test_estimate_viability_flag(self):
        assert estimate(CellType.SLC, 2.0).viable_5y
        assert not estimate(CellType.PLC, 2.0).viable_5y


class TestQlcEnablement:
    def test_rows_cover_all_cells(self):
        rows = qlc_enablement_table()
        assert [r["cell"] for r in rows] == ["SLC", "MLC", "TLC", "QLC", "PLC"]

    def test_zns_always_outlives_conventional(self):
        for row in qlc_enablement_table(conventional_wa=3.0, zns_wa=1.1):
            assert row["zns_years"] > row["conventional_years"]

    def test_lifetime_monotone_in_endurance(self):
        rows = qlc_enablement_table()
        zns_years = [r["zns_years"] for r in rows]
        assert zns_years == sorted(zns_years, reverse=True)

    def test_qlc_crossover_exists_at_read_tier_duty(self):
        """The §2.5 shape: a conventional/ZNS viability split at QLC."""
        rows = qlc_enablement_table(conventional_wa=2.5, zns_wa=1.1, dwpd=0.5)
        qlc = next(r for r in rows if r["cell"] == "QLC")
        assert not qlc["conventional_5y_viable"]
        assert qlc["zns_5y_viable"]
