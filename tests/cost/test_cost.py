"""Tests for the DRAM, DIMM, and BOM cost models."""

import pytest

from repro.cost.bom import compare_cost_per_gb, conventional_bom, zns_bom
from repro.cost.dimms import DIMM_PRICES_2020, dimm_price_per_gb, small_dimm_premium
from repro.cost.dram import (
    conventional_mapping_dram_bytes,
    dram_overhead_table,
    zns_mapping_dram_bytes,
)
from repro.flash.geometry import GIB, KIB, MIB, TIB


class TestDram:
    def test_paper_1tb_numbers(self):
        # §2.2: ~1 GB/TB conventional, ~256 KB/TB ZNS.
        assert conventional_mapping_dram_bytes(TIB) == GIB
        assert zns_mapping_dram_bytes(TIB) == 256 * KIB

    def test_reduction_factor_is_block_to_page_ratio(self):
        conv = conventional_mapping_dram_bytes(TIB, page_size=4 * KIB)
        zns = zns_mapping_dram_bytes(TIB, erasure_block_size=16 * MIB)
        assert conv / zns == (16 * MIB) / (4 * KIB)

    def test_scales_linearly(self):
        assert conventional_mapping_dram_bytes(2 * TIB) == 2 * GIB

    def test_table_rows(self):
        rows = dram_overhead_table([TIB, 4 * TIB])
        assert len(rows) == 2
        assert rows[0]["conventional_dram_human"] == "1.0 GiB"
        assert rows[0]["zns_dram_human"] == "256.0 KiB"
        assert rows[1]["reduction_factor"] == rows[0]["reduction_factor"]

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            conventional_mapping_dram_bytes(100)
        with pytest.raises(ValueError):
            zns_mapping_dram_bytes(100)


class TestDimms:
    def test_price_per_gb(self):
        assert dimm_price_per_gb(16) == DIMM_PRICES_2020[16] / 16

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            dimm_price_per_gb(3)

    def test_footnote_2_premium_exceeds_2x(self):
        assert small_dimm_premium() > 2.0

    def test_per_gb_price_falls_with_size(self):
        sizes = sorted(DIMM_PRICES_2020)
        per_gb = [dimm_price_per_gb(s) for s in sizes]
        assert per_gb == sorted(per_gb, reverse=True)

    def test_custom_price_table(self):
        prices = {1: 10.0, 16: 80.0, 32: 160.0}
        assert small_dimm_premium(prices=prices) == pytest.approx(2.0)


class TestBom:
    def test_conventional_carries_op_and_dram(self):
        bom = conventional_bom(TIB, op_ratio=0.28)
        assert bom.raw_flash_bytes == int(TIB * 1.28)
        assert bom.dram_bytes > GIB  # map covers raw flash

    def test_zns_carries_spares_and_tiny_dram(self):
        bom = zns_bom(TIB)
        assert bom.raw_flash_bytes < int(TIB * 1.05)
        assert bom.dram_bytes < MIB

    def test_zns_cheaper_per_usable_gb(self):
        conv = conventional_bom(TIB, op_ratio=0.07)
        zns = zns_bom(TIB)
        assert zns.cost_per_usable_gb < conv.cost_per_usable_gb

    def test_host_translation_charges_host_dram(self):
        plain = zns_bom(TIB)
        translated = zns_bom(TIB, host_translation=True)
        assert translated.total_cost > plain.total_cost
        # ...but host DIMMs are cheap enough that it stays below conventional.
        assert translated.cost_per_usable_gb < conventional_bom(TIB, 0.07).cost_per_usable_gb

    def test_compare_table_shape(self):
        rows = compare_cost_per_gb()
        designs = [r["design"] for r in rows]
        assert designs[0].startswith("conventional")
        assert "zns" in designs
        assert all("cost_per_usable_gb" in r for r in rows)
        # Cost rises with OP among conventional rows.
        conv_costs = [r["cost_per_usable_gb"] for r in rows if "conventional" in r["design"]]
        assert conv_costs == sorted(conv_costs)

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ValueError):
            conventional_bom(TIB, op_ratio=-0.1)
        with pytest.raises(ValueError):
            zns_bom(TIB, spare_ratio=1.5)
