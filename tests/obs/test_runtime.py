"""Environment-driven tracer wiring (the CLI's --trace/--metrics-out path)."""

import os

import pytest

from repro.flash.geometry import FlashGeometry
from repro.ftl.device import ConventionalSSD
from repro.obs import runtime
from repro.obs.jsonl import merge_trace_parts, read_events
from repro.obs.sinks import RecordingSink


@pytest.fixture(autouse=True)
def clean_runtime(monkeypatch):
    monkeypatch.delenv(runtime.TRACE_ENV, raising=False)
    monkeypatch.delenv(runtime.METRICS_ENV, raising=False)
    runtime._reset_for_tests()
    yield
    runtime._reset_for_tests()


class TestGlobalSinks:
    def test_installed_sink_reaches_new_devices(self):
        sink = runtime.install_global_sink(RecordingSink())
        try:
            device = ConventionalSSD(FlashGeometry.small())
            device.write_block(0)
        finally:
            runtime.remove_global_sink(sink)
        assert any(e.layer == "flash.nand" for e in sink.events)

    def test_removed_sink_not_attached_to_new_tracers(self):
        sink = runtime.install_global_sink(RecordingSink())
        runtime.remove_global_sink(sink)
        tracer = runtime.new_tracer()
        assert sink not in tracer.sinks


class TestEnvTrace:
    def test_trace_env_writes_part_file_and_merges(self, tmp_path, monkeypatch):
        path = str(tmp_path / "trace.jsonl")
        monkeypatch.setenv(runtime.TRACE_ENV, path)
        device = ConventionalSSD(FlashGeometry.small())
        device.write_block(0)
        device.read_block(0)
        runtime.flush_trace()
        part = f"{path}.{os.getpid()}.part"
        assert os.path.exists(part)
        count = merge_trace_parts(path)
        events = list(read_events(path))
        assert count == len(events) > 0
        assert {e.op for e in events} == {"program", "read"}

    def test_no_env_no_files(self, tmp_path):
        device = ConventionalSSD(FlashGeometry.small())
        device.write_block(0)
        runtime.flush_trace()
        assert list(tmp_path.iterdir()) == []


class TestMetricsAggregator:
    def test_absent_when_env_unset(self):
        assert runtime.metrics_aggregator() is None

    def test_collects_flash_ops_when_enabled(self, monkeypatch):
        monkeypatch.setenv(runtime.METRICS_ENV, "1")
        aggregator = runtime.metrics_aggregator()
        assert aggregator is not None
        aggregator.reset()
        device = ConventionalSSD(FlashGeometry.small())
        device.write_block(0)
        summary = aggregator.summary()
        assert summary["flash_ops"]["flash.nand"]["program"] == 1
