"""Tests for MetricsFrame: exact merge algebra, quantiles, the sink.

The load-bearing property is that ``merge`` is exactly associative and
commutative -- integer sums, order-free maxima, element-wise histogram
adds -- so sharded telemetry reassembles byte-identical to a serial run
no matter how observations were partitioned. Hypothesis drives random
frames and random partitions at that claim.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    FaultEvent,
    FlashOpEvent,
    HostRequestEvent,
    RecoveryEvent,
)
from repro.obs.frame import (
    LATENCY_BIN_EDGES_US,
    FrameSink,
    MetricsFrame,
    normalize_metric_key,
)


class TestNormalizeMetricKey:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("Read P99 (µs)", "read_p99_us"),
            ("flash.nand. Program-Ops", "flash.nand.program_ops"),
            ("fleet.request.read.latency_us", "fleet.request.read.latency_us"),
            ("  Weird__KEY  ", "weird_key"),
        ],
    )
    def test_examples(self, raw, expected):
        assert normalize_metric_key(raw) == expected

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, raw):
        once = normalize_metric_key(raw)
        assert normalize_metric_key(once) == once


# -- Random-frame strategy ---------------------------------------------------

_KEYS = st.sampled_from(["a.ops", "a.bytes", "b.ops", "lat_us", "c"])
_LATENCIES = st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def frames(draw) -> MetricsFrame:
    frame = MetricsFrame()
    for key, amount in draw(
        st.lists(st.tuples(_KEYS, st.integers(1, 1000)), max_size=6)
    ):
        frame.add(key, amount)
    for key, value in draw(st.lists(st.tuples(_KEYS, _LATENCIES), max_size=4)):
        frame.peak(key, value)
    for key, value in draw(st.lists(st.tuples(_KEYS, _LATENCIES), max_size=8)):
        frame.observe(key, value)
    return frame


class TestMergeAlgebra:
    @given(a=frames(), b=frames())
    @settings(max_examples=30, deadline=None)
    def test_commutative(self, a, b):
        assert a.merged(b).to_dict() == b.merged(a).to_dict()

    @given(a=frames(), b=frames(), c=frames())
    @settings(max_examples=30, deadline=None)
    def test_associative(self, a, b, c):
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left.to_dict() == right.to_dict()

    @given(a=frames())
    @settings(max_examples=20, deadline=None)
    def test_empty_frame_is_identity(self, a):
        assert MetricsFrame().merged(a).to_dict() == a.to_dict()
        assert a.merged(MetricsFrame()).to_dict() == a.to_dict()

    @given(a=frames(), b=frames())
    @settings(max_examples=20, deadline=None)
    def test_merge_does_not_mutate_inputs(self, a, b):
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merged(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b

    @given(
        values=st.lists(_LATENCIES, min_size=1, max_size=40),
        cuts=st.lists(st.integers(0, 40), max_size=4),
        q=st.sampled_from([0.5, 0.9, 0.99, 0.999, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_observation_equals_serial(self, values, cuts, q):
        # Any partition of the observation stream merges back to the
        # serial frame -- bins are integers, so equality is exact.
        serial = MetricsFrame()
        for value in values:
            serial.observe("lat_us", value)

        bounds = sorted({min(c, len(values)) for c in cuts} | {0, len(values)})
        shards = []
        for lo, hi in zip(bounds, bounds[1:]):
            shard = MetricsFrame()
            for value in values[lo:hi]:
                shard.observe("lat_us", value)
            shards.append(shard)
        merged = MetricsFrame.merge(shards)
        assert merged.to_dict() == serial.to_dict()
        assert merged.quantile("lat_us", q) == serial.quantile("lat_us", q)


class TestReads:
    def test_counter_and_maximum_defaults(self):
        frame = MetricsFrame()
        frame.add("x.ops", 3)
        frame.peak("x.peak", 7.5)
        assert frame.counter("x.ops") == 3
        assert frame.counter("missing", default=-1) == -1
        assert frame.maximum("x.peak") == 7.5
        assert frame.maximum("missing") == 0.0

    def test_keys_normalize_on_every_surface(self):
        frame = MetricsFrame()
        frame.add("Read Ops")
        assert frame.counter("read_ops") == 1
        assert MetricsFrame(counters={"Read Ops": 2}).counter("read_ops") == 2

    def test_quantile_is_a_bin_upper_edge_covering_the_value(self):
        frame = MetricsFrame()
        for value in (10.0, 20.0, 30.0, 1000.0):
            frame.observe("lat", value)
        p50 = frame.quantile("lat", 0.5)
        assert p50 in LATENCY_BIN_EDGES_US
        assert p50 >= 20.0
        assert frame.quantile("lat", 1.0) >= 1000.0
        assert frame.observations("lat") == 4

    def test_quantile_validates_q(self):
        frame = MetricsFrame()
        with pytest.raises(ValueError):
            frame.quantile("lat", 0.0)
        with pytest.raises(ValueError):
            frame.quantile("lat", 1.5)

    def test_quantile_of_missing_histogram_is_zero(self):
        assert MetricsFrame().quantile("lat", 0.99) == 0.0

    def test_overflow_lands_in_the_last_bin(self):
        frame = MetricsFrame()
        frame.observe("lat", 10 * LATENCY_BIN_EDGES_US[-1])
        assert frame.quantile("lat", 1.0) == LATENCY_BIN_EDGES_US[-1]


class TestSerializationFrame:
    @given(a=frames())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_through_json(self, a):
        wire = json.loads(json.dumps(a.to_dict()))
        assert MetricsFrame.from_dict(wire).to_dict() == a.to_dict()

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            MetricsFrame.from_dict({"schema_version": 99})

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ValueError, match="bins"):
            MetricsFrame(hists={"lat": [0, 1, 2]})


class TestFrameSink:
    def test_event_stream_accumulates(self):
        sink = FrameSink()
        sink.on_event(FlashOpEvent("flash.nand", "program", 0, 0, nbytes=4096))
        sink.on_event(FlashOpEvent("flash.nand", "program", 0, 1, nbytes=4096))
        sink.on_event(FlashOpEvent("flash.nand", "erase", 0, count=1))
        sink.on_event(
            HostRequestEvent("fleet.request", "read", "complete", latency_us=120.0)
        )
        sink.on_event(HostRequestEvent("fleet.request", "read", "enqueue"))
        sink.on_event(FaultEvent("flash.nand", "program-fail", block=3))
        sink.on_event(RecoveryEvent("ftl", "page-rewrite", block=3))

        frame = sink.frame
        assert frame.counter("flash.nand.program.ops") == 2
        assert frame.counter("flash.nand.program.bytes") == 8192
        assert frame.counter("flash.nand.erase.ops") == 1
        # Only the "complete" phase counts as a served request.
        assert frame.counter("fleet.request.read.requests") == 1
        assert frame.observations("fleet.request.read.latency_us") == 1
        assert frame.quantile("fleet.request.read.latency_us", 1.0) >= 120.0
        assert frame.counter("faults.program-fail") == 1
        assert frame.counter("recovery.ftl.page-rewrite") == 1

    def test_reset_starts_a_fresh_frame(self):
        sink = FrameSink()
        sink.on_event(FlashOpEvent("flash.nand", "program", 0, 0))
        old = sink.frame
        sink.reset()
        assert sink.frame is not old
        assert sink.frame.counter("flash.nand.program.ops") == 0


class TestObserveMany:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_LATENCIES, max_size=80))
    def test_equals_scalar_observe_loop(self, values):
        # Sizes straddle the 32-observation threshold where observe_many
        # switches from the bisect loop to searchsorted+bincount; both
        # sides must bin exactly like per-value observe().
        batched = MetricsFrame()
        batched.observe_many("lat_us", values)
        scalar = MetricsFrame()
        for value in values:
            scalar.observe("lat_us", value)
        assert batched.to_dict() == scalar.to_dict()

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_LATENCIES, min_size=1, max_size=80))
    def test_accepts_lists_and_arrays_identically(self, values):
        import numpy as np

        from_list = MetricsFrame()
        from_list.observe_many("lat_us", values)
        from_array = MetricsFrame()
        from_array.observe_many("lat_us", np.asarray(values, dtype=np.float64))
        assert from_list.to_dict() == from_array.to_dict()

    def test_empty_batch_creates_no_histogram(self):
        frame = MetricsFrame()
        frame.observe_many("lat_us", [])
        assert frame.hists == {}
