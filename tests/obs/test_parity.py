"""The sinks reproduce the hand-wired instruments exactly.

The refactor's contract: every value the old threaded-through counters and
latency recorders produced must come out of the event stream unchanged.
These tests replay a recorded stream into fresh sinks and compare against
the device's own (sink-backed) instruments, and pin hand-computed counts
on small fixed workloads.
"""

import random

from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.ftl.device import ConventionalSSD, TimedConventionalSSD
from repro.hostio.timed import TimedZonedBlockDevice
from repro.obs.sinks import LatencySink, OpCounterSink, RecordingSink
from repro.sim.engine import Engine
from repro.zns.device import ZNSDevice


def _replay(events, sink):
    for event in events:
        sink.on_event(event)
    return sink


class TestCounterParity:
    def test_nand_counters_match_replayed_stream(self):
        device = ConventionalSSD(FlashGeometry.small())
        recording = device.tracer.attach(RecordingSink())
        rng = random.Random(7)
        hot = device.num_blocks // 4  # overwrite-heavy: forces GC copies
        for _ in range(6 * hot):
            device.write_block(rng.randrange(hot))
        for _ in range(100):
            device.read_block(rng.randrange(hot))
        replayed = _replay(
            recording.events, OpCounterSink("flash.nand", copy_programs=True)
        )
        assert replayed.counter == device.ftl.nand.counters
        # The workload is big enough to have forced GC copies.
        assert device.ftl.nand.counters.copies > 0

    def test_nand_fixed_workload_exact_counts(self):
        device = ConventionalSSD(FlashGeometry.small())
        for lba in range(10):
            device.write_block(lba)
        for lba in range(4):
            device.read_block(lba)
        counters = device.ftl.nand.counters
        assert counters.writes == 10
        assert counters.reads == 4
        assert counters.bytes_written == 10 * device.block_size
        assert counters.bytes_read == 4 * device.block_size
        assert counters.erases == 0

    def test_zns_command_counters_exact(self):
        geometry = ZonedGeometry.small()
        device = ZNSDevice(geometry)
        pages = geometry.pages_per_zone
        device.write(0, npages=pages)          # fill zone 0
        device.write(1, npages=3)
        for offset in range(5):
            device.read(0, offset)
        device.simple_copy([(0, 0), (0, 1)], dst_zone_id=2)
        device.reset_zone(0)
        counters = device.counters
        page = device.page_size
        assert counters.writes == pages + 3
        assert counters.bytes_written == (pages + 3) * page
        assert counters.reads == 5
        assert counters.bytes_read == 5 * page
        assert counters.copies == 2
        assert counters.bytes_copied == 2 * page
        assert counters.erases == geometry.blocks_per_zone
        # Device-internal copy senses are not host reads at any layer.
        assert device.nand.counters.reads == 5

    def test_zns_counters_match_replayed_stream(self):
        geometry = ZonedGeometry.small()
        device = ZNSDevice(geometry)
        recording = device.tracer.attach(RecordingSink())
        device.write(0, npages=geometry.pages_per_zone)
        device.simple_copy([(0, 0)], dst_zone_id=1)
        device.reset_zone(0)
        replayed = _replay(recording.events, OpCounterSink("zns.device"))
        assert replayed.counter == device.counters


class TestLatencyParity:
    def test_timed_conventional_latencies_match_replayed_stream(self):
        engine = Engine()
        device = TimedConventionalSSD(engine, FlashGeometry.small())
        recording = device.tracer.attach(RecordingSink())
        rng = random.Random(3)
        procs = []
        written = []
        for _ in range(200):
            lpn = rng.randrange(64)
            written.append(lpn)
            procs.append(device.submit_write(lpn))
        for _ in range(50):
            procs.append(device.submit_read(rng.choice(written)))
        for proc in procs:
            engine.run(until=proc)

        reads = _replay(recording.events, LatencySink(op="read")).recorder
        writes = _replay(recording.events, LatencySink(op="write")).recorder
        assert reads._samples == device.read_latency._samples
        assert writes._samples == device.write_latency._samples
        assert reads.count == 50
        assert writes.count == 200

    def test_request_lifecycle_phases_are_complete(self):
        engine = Engine()
        device = TimedConventionalSSD(engine, FlashGeometry.small())
        recording = device.tracer.attach(RecordingSink())
        write = device.submit_write(1)
        engine.run(until=write)
        read = device.submit_read(1)
        engine.run(until=read)
        requests = recording.of_kind("host-request")
        by_id = {}
        for event in requests:
            by_id.setdefault((event.op, event.request_id), []).append(event.phase)
        for phases in by_id.values():
            assert phases == ["enqueue", "service-start", "complete"]


class TestCrossLayerStream:
    def test_one_sink_sees_the_whole_zns_stack(self):
        engine = Engine()
        stack = TimedZonedBlockDevice(engine, ZonedGeometry.small())
        recording = stack.tracer.attach(RecordingSink())
        rng = random.Random(11)
        lbas = stack.layer.logical_pages
        for _ in range(3 * lbas):
            proc = stack.submit_write(rng.randrange(lbas))
            engine.run(until=proc)
        proc = stack.submit_read(0)
        engine.run(until=proc)
        layers = {event.layer for event in recording.events}
        assert {
            "flash.nand",
            "flash.service",
            "zns.device",
            "block.dmzoned",
            "hostio.request",
        } <= layers
