"""JSONL export: dict round-trips, file round-trips, part merging."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    FaultEvent,
    FlashOpEvent,
    GcEvent,
    HostRequestBatchEvent,
    HostRequestEvent,
    ReclaimEvent,
    RecoveryEvent,
    TranslationEvent,
    ZoneAppendEvent,
    ZoneMgmtEvent,
    ZoneTransitionEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.jsonl import JsonlSink, merge_trace_parts, read_events
from repro.obs.tracer import Tracer

SAMPLES = [
    FlashOpEvent("flash.nand", "program", 3, 97, nbytes=4096, latency_us=200.0),
    FlashOpEvent("flash.service", "read", 1, 2, nbytes=4096, latency_us=81.0,
                 queued_us=16.0, t=1234.5),
    FlashOpEvent("zns.device", "erase", count=4),
    GcEvent("ftl.gc", "victim-selected", victim=7, valid_pages=12, free_blocks=3),
    ZoneTransitionEvent("zns.device", 5, "empty", "implicit-open",
                        "implicit-open", wp=0, t=10.0),
    ZoneAppendEvent("zns.device", 2, 128, npages=4),
    ReclaimEvent("block.dmzoned", "zone-reset", zone=9, free_zones=4),
    HostRequestEvent("hostio.request", "write", "complete", request_id=11,
                     latency_us=350.0, nbytes=4096, t=99.0),
    HostRequestBatchEvent("fleet.request", "write",
                          latencies_us=[120.0, 310.5, 440.25], count=3,
                          first_request_id=12),
    FaultEvent("flash.nand", "program-fail", block=3, page=97, retries=2,
               latency_us=90.0, op_index=1500),
    RecoveryEvent("ftl.ftl", "block-retired", block=3, pages_moved=12,
                  detail="program faults"),
    TranslationEvent("ftl.dftl", "gc", block=17, pages=9),
    ZoneMgmtEvent("zns.device", "reset", zone=6, latency_us=1500.0,
                  queued_behind=2),
]


class TestDictRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_event_round_trips_through_dict(self, event):
        clone = event_from_dict(event_to_dict(event))
        assert clone == event
        assert type(clone) is type(event)

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_dict_is_json_safe(self, event):
        clone = event_from_dict(json.loads(json.dumps(event_to_dict(event))))
        assert clone == event

    def test_every_event_type_has_a_sample(self):
        assert {type(e) for e in SAMPLES} == set(EVENT_TYPES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"event": "bogus"})


class TestJsonlFile:
    def test_sink_then_read_events_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        tracer.attach(JsonlSink(path))
        for event in SAMPLES:
            tracer.publish(event)
        assert list(read_events(path)) == SAMPLES

    def test_lines_are_flushed_as_written(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.on_event(SAMPLES[0])
        # Readable immediately, without close(): the fork-safety property.
        assert len(list(read_events(path))) == 1
        sink.close()

    def test_merge_trace_parts(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        for pid, chunk in ((100, SAMPLES[:3]), (200, SAMPLES[3:])):
            sink = JsonlSink(f"{path}.{pid}.part")
            for event in chunk:
                sink.on_event(event)
            sink.close()
        count = merge_trace_parts(path)
        assert count == len(SAMPLES)
        assert list(read_events(path)) == SAMPLES
        # Parts are consumed by the merge.
        assert list(tmp_path.glob("*.part")) == []

    def test_merge_with_no_parts_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert merge_trace_parts(path) == 0
        assert list(read_events(path)) == []
