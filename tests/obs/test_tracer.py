"""Tracer bus semantics: no-op when silent, ordered fan-out when not."""

from repro.obs.events import FlashOpEvent, HostRequestEvent
from repro.obs.sinks import RecordingSink
from repro.obs.tracer import Tracer


class TestZeroSink:
    def test_fresh_tracer_is_disabled(self):
        assert Tracer().enabled is False

    def test_publish_with_no_sinks_is_a_no_op(self):
        tracer = Tracer()
        tracer.publish(FlashOpEvent("flash.nand", "read", 0, 0))  # must not raise

    def test_guarded_hot_path_skips_construction(self):
        # The publisher convention: nothing is built when nobody listens.
        tracer = Tracer()
        built = []

        def make_event():
            built.append(1)
            return FlashOpEvent("flash.nand", "read", 0, 0)

        if tracer.enabled:
            tracer.publish(make_event())
        assert built == []


class TestFanOut:
    def test_attach_enables_detach_disables(self):
        tracer = Tracer()
        sink = tracer.attach(RecordingSink())
        assert tracer.enabled is True
        tracer.detach(sink)
        assert tracer.enabled is False

    def test_detach_of_stranger_is_ignored(self):
        tracer = Tracer()
        tracer.attach(RecordingSink())
        tracer.detach(RecordingSink())  # never attached
        assert tracer.enabled is True

    def test_sinks_receive_events_in_attachment_order(self):
        tracer = Tracer()
        order = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                order.append(self.tag)

        tracer.attach(Tagged("a"))
        tracer.attach(Tagged("b"))
        tracer.attach(Tagged("c"))
        tracer.publish(FlashOpEvent("flash.nand", "program", 1, 2))
        assert order == ["a", "b", "c"]

    def test_every_sink_sees_every_event(self):
        tracer = Tracer()
        first = tracer.attach(RecordingSink())
        second = tracer.attach(RecordingSink())
        events = [
            FlashOpEvent("flash.nand", "read", 0, 0),
            HostRequestEvent("hostio.request", "read", "complete", request_id=1),
        ]
        for event in events:
            tracer.publish(event)
        assert first.events == events
        assert second.events == events


class TestRecordingSink:
    def test_layer_filter(self):
        tracer = Tracer()
        nand_only = tracer.attach(RecordingSink(layer="flash.nand"))
        tracer.publish(FlashOpEvent("flash.nand", "read", 0, 0))
        tracer.publish(FlashOpEvent("zns.device", "read", 0, 0))
        assert [e.layer for e in nand_only.events] == ["flash.nand"]

    def test_of_kind_and_clear(self):
        tracer = Tracer()
        sink = tracer.attach(RecordingSink())
        tracer.publish(FlashOpEvent("flash.nand", "read", 0, 0))
        tracer.publish(HostRequestEvent("hostio.request", "read", "enqueue"))
        assert len(sink.of_kind("flash-op")) == 1
        assert len(sink.of_kind("host-request")) == 1
        sink.clear()
        assert sink.events == []
