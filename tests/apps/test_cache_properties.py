"""Property-based tests for the cache designs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cache import SetAssociativeCache, ZoneLogCache
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import ZonedGeometry
from repro.zns.device import ZNSDevice


@settings(max_examples=20, deadline=None)
@given(requests=st.lists(st.integers(0, 500), max_size=400))
def test_zone_log_cache_location_consistency(requests):
    """Every object the cache claims to hold is readable at its recorded
    location, and the device's zone state agrees."""
    cache = ZoneLogCache(ZNSDevice(ZonedGeometry.small()), readmit_hot=True)
    for obj in requests:
        if not cache.get(obj):
            cache.admit(obj)
    for obj, (zone, offset) in cache._location.items():
        assert offset < cache.device.zone(zone).wp, (
            f"object {obj} recorded beyond the write pointer"
        )
    # The FIFO list and free list never share zones.
    assert not (set(cache._fifo) & set(cache._free))


@settings(max_examples=20, deadline=None)
@given(requests=st.lists(st.integers(0, 100), max_size=300))
def test_set_associative_capacity_respected(requests):
    cache = SetAssociativeCache(RamDisk(16), ways=2)
    for obj in requests:
        if not cache.get(obj):
            cache.admit(obj)
    for bucket in cache._sets:
        assert len(bucket) <= cache.ways
        assert len(set(bucket)) == len(bucket)  # no duplicates


@settings(max_examples=10, deadline=None)
@given(requests=st.lists(st.integers(0, 60), min_size=50, max_size=300),
       seed=st.integers(0, 10))
def test_caches_agree_with_reference_on_hits(requests, seed):
    """A hit in either design must mean the object was admitted earlier
    and not (yet) evicted -- cross-checked against a simple shadow set."""
    cache = ZoneLogCache(ZNSDevice(ZonedGeometry.small()), readmit_hot=False)
    ever_admitted = set()
    for obj in requests:
        hit = cache.get(obj)
        if hit:
            assert obj in ever_admitted
        else:
            cache.admit(obj)
            ever_admitted.add(obj)
