"""Tests for LSM bloom filters, range scans, and crash recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lsm import BlockFileBackend, LSMConfig, LSMStore
from repro.apps.lsm.bloom import BloomFilter
from repro.block.ramdisk import RamDisk

SMALL_CFG = LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8)


def ram_store(cfg=SMALL_CFG):
    return LSMStore(BlockFileBackend(RamDisk(1 << 14), trim_on_delete=True), cfg)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.build(list(range(1000)))
        assert all(bloom.might_contain(k) for k in range(1000))

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.build(list(range(5000)), fp_rate=0.01)
        false_positives = sum(
            bloom.might_contain(k) for k in range(10_000, 30_000)
        )
        assert false_positives / 20_000 < 0.03  # 3x slack on the 1% target

    def test_sizing_scales_with_items(self):
        small = BloomFilter(expected_items=100)
        big = BloomFilter(expected_items=10_000)
        assert big.num_bits > small.num_bits

    def test_mixed_key_types(self):
        bloom = BloomFilter.build(["alpha", 42, ("t", 1)])
        assert bloom.might_contain("alpha")
        assert bloom.might_contain(42)
        assert bloom.might_contain(("t", 1))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=0)
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, fp_rate=1.5)

    def test_empty_build(self):
        bloom = BloomFilter.build([])
        assert not bloom.might_contain("anything")  # overwhelmingly likely


class TestBloomInStore:
    def test_negative_lookups_skip_flash(self):
        store = ram_store()
        for i in range(0, 4000, 2):  # even keys only
            store.put(i, i)
        reads_before = store.stats.table_reads
        for i in range(1, 1001, 2):  # misses inside the key range
            assert store.get(i) is None
        probes = store.stats.table_reads - reads_before
        # Without blooms every miss would probe >= 1 table; with them,
        # almost none reach flash.
        assert probes < 100
        assert store.stats.bloom_skips > 300

    def test_positive_lookups_still_correct(self):
        store = ram_store()
        for i in range(2000):
            store.put(i, f"v{i}")
        for i in range(0, 2000, 37):
            assert store.get(i) == f"v{i}"


class TestRangeScan:
    def test_scan_merges_levels(self):
        store = ram_store()
        for i in range(1500):
            store.put(i, i * 10)
        result = store.scan(100, 110)
        assert result == [(k, k * 10) for k in range(100, 111)]

    def test_scan_sees_newest_version(self):
        store = ram_store()
        for i in range(1000):
            store.put(i, "old")
        for i in range(100, 120):
            store.put(i, "new")
        result = dict(store.scan(95, 125))
        assert result[100] == "new"
        assert result[95] == "old"

    def test_scan_excludes_deleted(self):
        store = ram_store()
        for i in range(1000):
            store.put(i, i)
        store.delete(105)
        keys = [k for k, _ in store.scan(100, 110)]
        assert 105 not in keys
        assert 104 in keys

    def test_scan_charges_page_reads(self):
        store = ram_store()
        for i in range(3000):
            store.put(i, i)
        before = store.stats.scan_pages_read
        store.scan(0, 2999)
        assert store.stats.scan_pages_read > before

    def test_scan_empty_range(self):
        store = ram_store()
        for i in range(100):
            store.put(i, i)
        assert store.scan(5000, 6000) == []

    def test_scan_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ram_store().scan(10, 5)

    def test_scan_includes_memtable(self):
        store = ram_store()
        store.put(7, "memtable-only")
        assert store.scan(0, 100) == [(7, "memtable-only")]

    @settings(max_examples=15, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 200), min_size=1, max_size=150),
        lo=st.integers(0, 200),
        span=st.integers(0, 100),
    )
    def test_scan_matches_dict_model(self, keys, lo, span):
        store = ram_store()
        model = {}
        for i, k in enumerate(keys):
            store.put(k, i)
            model[k] = i
        hi = lo + span
        expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
        assert store.scan(lo, hi) == expected


class TestCrashRecovery:
    def test_durable_entries_survive(self):
        store = ram_store()
        # 32 entries per WAL page (4096/128); write exactly 2 pages' worth.
        for i in range(64):
            store.put(i, i)
        lost = store.crash_and_recover()
        assert lost == 0
        for i in range(64):
            assert store.get(i) == i

    def test_unsynced_tail_is_lost(self):
        store = ram_store()
        for i in range(40):  # 32 durable + 8 unsynced
            store.put(i, i)
        lost = store.crash_and_recover()
        assert lost == 8
        for i in range(32):
            assert store.get(i) == i
        for i in range(32, 40):
            assert store.get(i) is None

    def test_flushed_data_always_survives(self):
        store = ram_store()
        for i in range(1000):
            store.put(i, i)
        store.flush()
        store.crash_and_recover()
        for i in range(0, 1000, 97):
            assert store.get(i) == i

    def test_deletes_recovered(self):
        store = ram_store()
        for i in range(32):
            store.put(i, i)
        store.flush()
        store.delete(5)
        for i in range(100, 131):  # pad to sync the tombstone's WAL page
            store.put(i, i)
        store.crash_and_recover()
        assert store.get(5) is None

    def test_without_wal_everything_volatile_is_lost(self):
        cfg = LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8,
                        wal_enabled=False)
        store = ram_store(cfg)
        for i in range(10):
            store.put(i, i)
        lost = store.crash_and_recover()
        assert lost == 10
        assert store.get(3) is None

    def test_recovery_counter(self):
        store = ram_store()
        store.crash_and_recover()
        assert store.stats.recoveries == 1

    @settings(max_examples=10, deadline=None)
    @given(ops=st.integers(1, 200), crash_at=st.integers(0, 199), seed=st.integers(0, 50))
    def test_recovered_state_is_prefix_consistent(self, ops, crash_at, seed):
        """After recovery the store equals the model at some cut point
        between the last durable entry and the crash instant."""
        crash_at = min(crash_at, ops - 1)
        store = ram_store()
        rng = np.random.default_rng(seed)
        history = []
        for i in range(ops):
            k = int(rng.integers(0, 40))
            store.put(k, i)
            history.append((k, i))
            if i == crash_at:
                lost = store.crash_and_recover()
                break
        durable_prefix = history[: len(history) - lost]
        model = {}
        for k, v in durable_prefix:
            model[k] = v
        for k in range(40):
            assert store.get(k) == model.get(k)
