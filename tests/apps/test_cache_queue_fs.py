"""Tests for the flash caches, persistent queue, ZoneFS, and LFS."""

import pytest

from repro.apps.cache import SetAssociativeCache, ZoneLogCache
from repro.apps.lfs import LfsError, LogStructuredFS
from repro.apps.queue import PersistentQueue, QueueEmptyError, QueueFullError
from repro.apps.zonefs import ZoneFS, ZoneFsError
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import ZonedGeometry
from repro.workloads.synthetic import zipfian_stream
from repro.zns.device import ZNSDevice
from repro.zns.zone import ZoneState


def zns(store_data=False):
    return ZNSDevice(ZonedGeometry.small(), store_data=store_data)


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(RamDisk(64), ways=2)
        assert not cache.get(1)
        cache.admit(1)
        assert cache.get(1)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_set_eviction_lru(self):
        cache = SetAssociativeCache(RamDisk(1), ways=2)  # everything one set
        cache.admit(1)
        cache.admit(2)
        cache.get(1)  # bump 1
        cache.admit(3)  # evicts 2
        assert cache.get(1)
        assert not cache.get(2)
        assert cache.get(3)

    def test_each_admission_is_one_device_write(self):
        disk = RamDisk(64)
        cache = SetAssociativeCache(disk, ways=4)
        for i in range(100):
            cache.admit(i)
        assert disk.counters.writes == 100

    def test_readmitting_resident_is_noop(self):
        disk = RamDisk(64)
        cache = SetAssociativeCache(disk)
        cache.admit(1)
        cache.admit(1)
        assert disk.counters.writes == 1


class TestZoneLogCache:
    def test_miss_then_hit(self):
        cache = ZoneLogCache(zns())
        assert not cache.get(1)
        cache.admit(1)
        assert cache.get(1)

    def test_fifo_eviction_on_pressure(self):
        device = zns()
        cache = ZoneLogCache(device, readmit_hot=False)
        capacity = device.zone_count * device.geometry.pages_per_zone
        for i in range(capacity + 500):
            cache.admit(i)
        assert cache.stats.evictions > 0
        assert not cache.get(0)  # oldest object evicted
        assert cache.get(capacity + 499)  # newest survives

    def test_readmission_keeps_hot_objects(self):
        device = zns()
        cache = ZoneLogCache(device, readmit_hot=True)
        capacity = device.zone_count * device.geometry.pages_per_zone
        cache.admit(0)
        for i in range(1, capacity):
            cache.admit(i)
            if i % 50 == 0:
                cache.get(0)  # keep object 0 hot
        for i in range(capacity, capacity + 400):
            cache.admit(i)
            cache.get(0)
        assert cache.get(0), "hot object should have been readmitted"
        assert cache.stats.readmissions > 0

    def test_runs_indefinitely_within_capacity(self):
        cache = ZoneLogCache(zns(), readmit_hot=True)
        for obj in zipfian_stream(20_000, 30_000, theta=0.9, seed=1):
            if not cache.get(obj):
                cache.admit(obj)
        assert cache.stats.hit_ratio > 0.1


class TestPersistentQueue:
    def test_fifo_order(self):
        q = PersistentQueue(zns(store_data=True))
        for i in range(10):
            q.enqueue(f"m{i}".encode())
        out = [q.dequeue() for _ in range(10)]
        assert out == [f"m{i}".encode() for i in range(10)]

    def test_empty_dequeue_rejected(self):
        with pytest.raises(QueueEmptyError):
            PersistentQueue(zns()).dequeue()

    def test_zones_recycle(self):
        device = zns()
        q = PersistentQueue(device)
        pages_per_zone = device.geometry.pages_per_zone
        for _ in range(3 * pages_per_zone):
            q.enqueue()
        for _ in range(3 * pages_per_zone):
            q.dequeue()
        assert q.stats.zones_recycled >= 2
        assert q.depth == 0

    def test_runs_forever_when_consumed(self):
        device = zns()
        q = PersistentQueue(device)
        capacity = device.zone_count * device.geometry.pages_per_zone
        for i in range(2 * capacity):  # twice device capacity
            q.enqueue()
            q.dequeue()

    def test_full_when_unconsumed(self):
        device = zns()
        q = PersistentQueue(device)
        capacity = device.zone_count * device.geometry.pages_per_zone
        with pytest.raises(QueueFullError):
            for _ in range(capacity + 1):
                q.enqueue()

    def test_write_mode_equivalent_semantics(self):
        q = PersistentQueue(zns(store_data=True), use_append=False)
        q.enqueue(b"a")
        q.enqueue(b"b")
        assert q.dequeue() == b"a"
        assert q.dequeue() == b"b"


class TestZoneFS:
    def test_files_enumerated(self):
        fs = ZoneFS(zns())
        files = fs.list_files()
        assert files[0] == "seq/0"
        assert len(files) == fs.device.zone_count

    def test_append_read(self):
        fs = ZoneFS(zns(store_data=True))
        offset = fs.append("seq/3", data=b"hello")
        assert offset == 0
        assert fs.read("seq/3", 0) == b"hello"
        assert fs.size_pages("seq/3") == 1

    def test_truncate_zero_resets(self):
        fs = ZoneFS(zns())
        fs.append("seq/0")
        fs.truncate("seq/0", 0)
        assert fs.size_pages("seq/0") == 0

    def test_truncate_to_max_finishes(self):
        fs = ZoneFS(zns())
        fs.append("seq/0")
        fs.truncate("seq/0", fs.max_size_pages("seq/0"))
        assert fs.stat("seq/0")["state"] == ZoneState.FULL.value

    def test_partial_truncate_rejected(self):
        fs = ZoneFS(zns())
        fs.append("seq/0", npages=4)
        with pytest.raises(ZoneFsError):
            fs.truncate("seq/0", 2)

    def test_bad_paths_rejected(self):
        fs = ZoneFS(zns())
        for path in ("cnv/0", "seq/abc", "seq/99999"):
            with pytest.raises(ZoneFsError):
                fs.size_pages(path)

    def test_stat_reports_resets(self):
        fs = ZoneFS(zns())
        fs.append("seq/1")
        fs.truncate("seq/1", 0)
        assert fs.stat("seq/1")["resets"] == 1


class TestLogStructuredFS:
    def test_create_stat_unlink(self):
        fs = LogStructuredFS(zns())
        fs.create("/a/file1", size_pages=4, owner=1)
        assert fs.exists("/a/file1")
        inode = fs.stat("/a/file1")
        assert inode.size_pages == 4
        assert inode.owner == 1
        fs.unlink("/a/file1")
        assert not fs.exists("/a/file1")

    def test_duplicate_create_rejected(self):
        fs = LogStructuredFS(zns())
        fs.create("/f", 1)
        with pytest.raises(LfsError):
            fs.create("/f", 1)

    def test_unlink_missing_rejected(self):
        with pytest.raises(LfsError):
            LogStructuredFS(zns()).unlink("/nope")

    def test_overwrite_preserves_metadata(self):
        fs = LogStructuredFS(zns())
        fs.create("/f", 3, owner=7)
        old_obj = fs.stat("/f").obj_id
        fs.overwrite("/f")
        new = fs.stat("/f")
        assert new.obj_id != old_obj
        assert new.owner == 7
        assert new.size_pages == 3

    def test_metadata_hints_route_by_owner(self):
        fs = LogStructuredFS(zns(), use_metadata_hints=True)
        a = fs.create("/a", 1, owner=0)
        b = fs.create("/b", 1, owner=1)
        zone_a = fs.store.objects[a.obj_id].zone
        zone_b = fs.store.objects[b.obj_id].zone
        assert zone_a != zone_b

    def test_no_hints_share_zone(self):
        fs = LogStructuredFS(zns(), use_metadata_hints=False)
        a = fs.create("/a", 1, owner=0)
        b = fs.create("/b", 1, owner=1)
        assert fs.store.objects[a.obj_id].zone == fs.store.objects[b.obj_id].zone

    def test_list_files_sorted(self):
        fs = LogStructuredFS(zns())
        for name in ("/c", "/a", "/b"):
            fs.create(name, 1)
        assert fs.list_files() == ["/a", "/b", "/c"]

    def test_wa_reported(self):
        fs = LogStructuredFS(zns())
        fs.create("/f", 1)
        assert fs.write_amplification == pytest.approx(1.0)
