"""Unit tests for leveled-compaction selection and merging."""

import pytest

from repro.apps.lsm.compaction import CompactionTask, LeveledCompaction
from repro.apps.lsm.memtable import TOMBSTONE
from repro.apps.lsm.sstable import SSTable


def table(keys, level, value="v", size_pages=1):
    return SSTable(
        entries=[(k, f"{value}{k}") for k in sorted(set(keys))],
        level=level,
        size_pages=size_pages,
    )


def make_policy(**kwargs):
    defaults = dict(l0_limit=2, level0_pages=4, level_multiplier=10,
                    max_table_pages=4, entry_bytes=128, page_size=4096)
    defaults.update(kwargs)
    return LeveledCompaction(**defaults)


class TestPickTask:
    def test_no_pressure_no_task(self):
        policy = make_policy()
        levels = [[table([1], 0)], [], [], []]
        assert policy.pick_task(levels) is None

    def test_l0_count_triggers(self):
        policy = make_policy(l0_limit=2)
        levels = [[table([1], 0), table([2], 0)], [], []]
        task = policy.pick_task(levels)
        assert task is not None
        assert task.level == 0
        assert len(task.inputs_upper) == 2

    def test_l0_task_includes_overlapping_l1(self):
        policy = make_policy(l0_limit=2)
        l1_overlap = table([1, 5], 1)
        l1_clear = table([100, 200], 1)
        levels = [[table([1, 3], 0), table([2, 4], 0)], [l1_overlap, l1_clear], []]
        task = policy.pick_task(levels)
        assert l1_overlap in task.inputs_lower
        assert l1_clear not in task.inputs_lower

    def test_level_budget_overflow_triggers(self):
        policy = make_policy(level0_pages=2)
        levels = [[], [table([1], 1, size_pages=3)], [], []]
        task = policy.pick_task(levels)
        assert task is not None
        assert task.level == 1

    def test_budget_grows_by_multiplier(self):
        policy = make_policy(level0_pages=4, level_multiplier=10)
        assert policy.level_budget_pages(1) == 4
        assert policy.level_budget_pages(2) == 40
        assert policy.level_budget_pages(3) == 400
        with pytest.raises(ValueError):
            policy.level_budget_pages(0)

    def test_picks_cheapest_overlap(self):
        policy = make_policy(level0_pages=1)
        cheap = table([1, 2], 1, size_pages=2)       # no overlap below
        costly = table([10, 20], 1, size_pages=2)    # overlaps a big L2 run
        l2 = table(list(range(10, 21)), 2, size_pages=8)
        levels = [[], [cheap, costly], [l2], []]
        task = policy.pick_task(levels)
        assert task.inputs_upper == (cheap,)
        assert task.inputs_lower == ()


class TestMerge:
    def test_newer_value_wins(self):
        policy = make_policy()
        old = SSTable(entries=[(1, "old")], level=1, size_pages=1)
        new = SSTable(entries=[(1, "new")], level=0, size_pages=1)
        task = CompactionTask(0, (new,), (old,))
        (out,) = policy.merge(task, bottom_level=False)
        assert out.entries == [(1, "new")]
        assert out.level == 1

    def test_l0_recency_by_table_id(self):
        policy = make_policy()
        first = SSTable(entries=[(1, "first")], level=0, size_pages=1)
        second = SSTable(entries=[(1, "second")], level=0, size_pages=1)
        task = CompactionTask(0, (first, second), ())
        (out,) = policy.merge(task, bottom_level=False)
        assert out.entries == [(1, "second")]

    def test_tombstones_kept_above_bottom(self):
        policy = make_policy()
        dead = SSTable(entries=[(1, TOMBSTONE)], level=0, size_pages=1)
        task = CompactionTask(0, (dead,), ())
        (out,) = policy.merge(task, bottom_level=False)
        assert out.entries[0][1] is TOMBSTONE

    def test_tombstones_dropped_at_bottom(self):
        policy = make_policy()
        dead = SSTable(entries=[(1, TOMBSTONE), (2, "live")], level=0, size_pages=1)
        task = CompactionTask(0, (dead,), ())
        (out,) = policy.merge(task, bottom_level=True)
        assert out.entries == [(2, "live")]

    def test_all_tombstones_yield_no_output(self):
        policy = make_policy()
        dead = SSTable(entries=[(1, TOMBSTONE)], level=0, size_pages=1)
        task = CompactionTask(0, (dead,), ())
        assert policy.merge(task, bottom_level=True) == []

    def test_outputs_split_at_max_size(self):
        policy = make_policy(max_table_pages=1, entry_bytes=4096)  # 1 entry/page
        big = SSTable(entries=[(i, i) for i in range(5)], level=0, size_pages=5)
        task = CompactionTask(0, (big,), ())
        outs = policy.merge(task, bottom_level=False)
        assert len(outs) == 5
        keys = [k for out in outs for k, _ in out.entries]
        assert keys == list(range(5))

    def test_input_accounting(self):
        upper = table([1], 0, size_pages=2)
        lower = table([2], 1, size_pages=3)
        task = CompactionTask(0, (upper,), (lower,))
        assert task.input_pages == 5
        assert set(task.all_inputs) == {upper, lower}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_policy(l0_limit=0)
        with pytest.raises(ValueError):
            make_policy(level_multiplier=1)
