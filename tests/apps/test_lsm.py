"""Tests for the LSM store: memtable, sstables, compaction, backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lsm import (
    BlockFileBackend,
    LSMConfig,
    LSMStore,
    MemTable,
    SSTable,
    ZoneFileBackend,
)
from repro.apps.lsm.backends import AllocationError, ExtentAllocator
from repro.apps.lsm.memtable import TOMBSTONE
from repro.apps.lsm.sstable import size_in_pages
from repro.block.ramdisk import RamDisk
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.zns.device import ZNSDevice

SMALL_CFG = LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8)


def ram_store(cfg=SMALL_CFG):
    return LSMStore(BlockFileBackend(RamDisk(1 << 14), trim_on_delete=True), cfg)


class TestMemTable:
    def test_put_get(self):
        mt = MemTable()
        mt.put("a", 1)
        assert mt.get("a") == (True, 1)
        assert mt.get("b") == (False, None)

    def test_delete_is_tombstone(self):
        mt = MemTable()
        mt.delete("a")
        present, value = mt.get("a")
        assert present and value is TOMBSTONE

    def test_sorted_items(self):
        mt = MemTable()
        for k in ("c", "a", "b"):
            mt.put(k, k)
        assert [k for k, _ in mt.sorted_items()] == ["a", "b", "c"]

    def test_bytes_track_overwrites(self):
        mt = MemTable()
        mt.put("k", "x" * 100)
        big = mt.approximate_bytes
        mt.put("k", "x")
        assert mt.approximate_bytes < big
        assert len(mt) == 1


class TestSSTable:
    def test_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            SSTable(entries=[(2, "b"), (1, "a")], level=0, size_pages=1)
        with pytest.raises(ValueError):
            SSTable(entries=[(1, "a"), (1, "b")], level=0, size_pages=1)
        with pytest.raises(ValueError):
            SSTable(entries=[], level=0, size_pages=1)

    def test_find(self):
        t = SSTable(entries=[(1, "a"), (3, "c")], level=0, size_pages=1)
        assert t.find(1) == (True, "a", 0)
        assert t.find(2)[0] is False
        assert t.find(3) == (True, "c", 1)

    def test_overlap(self):
        a = SSTable(entries=[(1, "a"), (5, "e")], level=1, size_pages=1)
        b = SSTable(entries=[(4, "d"), (9, "i")], level=1, size_pages=1)
        c = SSTable(entries=[(6, "f"), (9, "i")], level=1, size_pages=1)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_page_of_entry_monotonic(self):
        t = SSTable(entries=[(i, i) for i in range(100)], level=0, size_pages=4)
        pages = [t.page_of_entry(i) for i in range(100)]
        assert pages == sorted(pages)
        assert pages[0] == 0
        assert pages[-1] == 3

    def test_size_in_pages(self):
        assert size_in_pages(1, 128, 4096) == 1
        assert size_in_pages(32, 128, 4096) == 1
        assert size_in_pages(33, 128, 4096) == 2


class TestExtentAllocator:
    def test_allocate_free_roundtrip(self):
        alloc = ExtentAllocator(100)
        extents = alloc.allocate(30)
        assert alloc.free_blocks == 70
        alloc.free(extents)
        assert alloc.free_blocks == 100

    def test_exhaustion_rejected(self):
        alloc = ExtentAllocator(10)
        alloc.allocate(8)
        with pytest.raises(AllocationError):
            alloc.allocate(5)

    def test_fragmented_allocation_spans_extents(self):
        alloc = ExtentAllocator(100, strategy="first-fit")
        a = alloc.allocate(40)
        b = alloc.allocate(40)
        alloc.free(a)  # free [0,40); [80,100) also free
        spanning = alloc.allocate(50)
        assert len(spanning) == 2
        assert sum(e.length for e in spanning) == 50

    def test_double_free_rejected(self):
        alloc = ExtentAllocator(100)
        extents = alloc.allocate(10)
        alloc.free(extents)
        with pytest.raises(ValueError):
            alloc.free(extents)

    def test_next_fit_rotates(self):
        alloc = ExtentAllocator(100, strategy="next-fit")
        a = alloc.allocate(10)
        alloc.free(a)
        b = alloc.allocate(10)
        # Cursor moved past the first allocation despite it being free.
        assert b[0].start == 10

    def test_aged_is_deterministic_per_rng(self):
        a = ExtentAllocator(100, strategy="aged", rng=np.random.default_rng(3))
        b = ExtentAllocator(100, strategy="aged", rng=np.random.default_rng(3))
        for _ in range(5):
            assert a.allocate(7) == b.allocate(7)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ExtentAllocator(10, strategy="chaotic")


class TestStoreCorrectness:
    def test_put_get_roundtrip(self):
        store = ram_store()
        for i in range(500):
            store.put(i, f"v{i}")
        for i in range(500):
            assert store.get(i) == f"v{i}"

    def test_overwrites_visible(self):
        store = ram_store()
        rng = np.random.default_rng(0)
        truth = {}
        for i in range(3000):
            k = int(rng.integers(0, 200))
            store.put(k, i)
            truth[k] = i
        for k, v in truth.items():
            assert store.get(k) == v

    def test_deletes_shadow_older_versions(self):
        store = ram_store()
        for i in range(300):
            store.put(i, i)
        for i in range(0, 300, 2):
            store.delete(i)
        for i in range(300):
            expected = None if i % 2 == 0 else i
            assert store.get(i) == expected

    def test_missing_key_is_none(self):
        assert ram_store().get("nope") is None

    def test_flush_and_compaction_happen(self):
        store = ram_store()
        for i in range(3000):
            store.put(i % 400, i)
        assert store.stats.flushes > 0
        assert store.stats.compactions > 0
        assert store.levels[1], "expected tables below L0"

    def test_scan_count_matches_live_keys(self):
        store = ram_store()
        rng = np.random.default_rng(1)
        live = set()
        for i in range(2000):
            k = int(rng.integers(0, 300))
            if rng.random() < 0.2:
                store.delete(k)
                live.discard(k)
            else:
                store.put(k, i)
                live.add(k)
        assert store.scan_count() == len(live)

    def test_wal_pages_written(self):
        store = ram_store()
        for i in range(200):
            store.put(i, i)
        assert store.stats.wal_pages > 0

    def test_wal_disabled(self):
        cfg = LSMConfig(memtable_pages=4, level0_pages=16, max_table_pages=8,
                        wal_enabled=False)
        store = ram_store(cfg)
        for i in range(200):
            store.put(i, i)
        assert store.stats.wal_pages == 0

    @settings(max_examples=15, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 63), st.integers(0, 1000)),
        max_size=300,
    ))
    def test_matches_dict_model(self, ops):
        store = ram_store()
        model = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        for key in range(64):
            assert store.get(key) == model.get(key)


class TestBackends:
    def test_zone_backend_roundtrip(self):
        zoned = ZonedGeometry.small()
        store = LSMStore(ZoneFileBackend(ZNSDevice(zoned)), SMALL_CFG)
        for i in range(2000):
            store.put(i % 300, i)
        rng = np.random.default_rng(2)
        for _ in range(100):
            k = int(rng.integers(0, 300))
            assert store.get(k) is not None

    def test_zone_backend_wa_near_one(self):
        zoned = ZonedGeometry.small()
        device = ZNSDevice(zoned)
        store = LSMStore(ZoneFileBackend(device), SMALL_CFG)
        for i in range(20_000):
            store.put(i % 2000, i)
        flash_pages = device.nand.physical_bytes_written() // device.page_size
        app_pages = store.stats.app_pages_written
        assert flash_pages / app_pages < 1.15

    def test_block_backend_trim_informs_ftl(self):
        from repro.ftl.device import ConventionalSSD
        from repro.ftl.ftl import FTLConfig

        ssd = ConventionalSSD(FlashGeometry.small(), FTLConfig(op_ratio=0.25))
        store = LSMStore(BlockFileBackend(ssd, trim_on_delete=True), SMALL_CFG)
        for i in range(5000):
            store.put(i % 500, i)
        assert store.backend.stats.pages_trimmed > 0

    def test_backend_reports_relocation_wa(self):
        zoned = ZonedGeometry.small()
        store = LSMStore(ZoneFileBackend(ZNSDevice(zoned)), SMALL_CFG)
        for i in range(5000):
            store.put(i % 500, i)
        assert store.backend.stats.backend_write_amplification >= 1.0

    def test_level_sizes_report(self):
        store = ram_store()
        for i in range(2000):
            store.put(i % 300, i)
        sizes = store.level_sizes_pages()
        assert len(sizes) == store.config.max_levels
        assert sum(sizes) > 0
