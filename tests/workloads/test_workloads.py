"""Tests for workload generators and traces."""

import numpy as np
import pytest

from repro.block.ramdisk import RamDisk
from repro.workloads.lifetime import LifetimeClass, ObjectLifetimeWorkload
from repro.workloads.multitenant import BurstyTenant, demand_trace
from repro.workloads.synthetic import (
    hot_cold_stream,
    read_write_mix,
    sequential_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.workloads.traces import (
    TraceOp,
    TraceRecord,
    parse_trace,
    replay_trace,
    synthesize_trace,
    trace_lines,
)


class TestSynthetic:
    def test_uniform_in_range_and_deterministic(self):
        a = list(uniform_stream(100, 50, seed=1))
        b = list(uniform_stream(100, 50, seed=1))
        assert a == b
        assert all(0 <= x < 100 for x in a)

    def test_sequential_wraps(self):
        assert list(sequential_stream(4, 6)) == [0, 1, 2, 3, 0, 1]
        assert list(sequential_stream(4, 3, start=2)) == [2, 3, 0]

    def test_zipfian_skew(self):
        samples = list(zipfian_stream(1000, 20_000, theta=0.99, seed=2))
        assert all(0 <= x < 1000 for x in samples)
        # Strong skew: the hottest 10% of pages draw well over half the traffic.
        hot_hits = sum(1 for x in samples if x < 100)
        assert hot_hits / len(samples) > 0.5

    def test_zipfian_large_space_approximation(self):
        samples = list(zipfian_stream(1 << 20, 5000, theta=0.9, seed=2))
        assert all(0 <= x < (1 << 20) for x in samples)
        hot_hits = sum(1 for x in samples if x < (1 << 20) // 10)
        assert hot_hits / len(samples) > 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            list(uniform_stream(0, 1))
        with pytest.raises(ValueError):
            list(zipfian_stream(10, 1, theta=1.5))
        with pytest.raises(ValueError):
            list(hot_cold_stream(10, 1, hot_fraction=0.0))


class TestHotCold:
    def test_traffic_split(self):
        events = list(hot_cold_stream(1000, 20_000, 0.1, 0.9, seed=3))
        hot = sum(1 for _, is_hot in events if is_hot)
        assert 0.85 < hot / len(events) < 0.95
        for page, is_hot in events:
            if is_hot:
                assert page < 100
            else:
                assert page >= 100


class TestReadWriteMix:
    def test_reads_target_written_space(self):
        written = set()
        for op, page in read_write_mix(1000, 5000, read_fraction=0.5, seed=4):
            if op == "write":
                written.add(page)
            else:
                assert page <= max(written)

    def test_all_writes_when_fraction_zero(self):
        ops = [op for op, _ in read_write_mix(100, 200, read_fraction=0.0, seed=5)]
        assert set(ops) == {"write"}


class TestLifetimeWorkload:
    def test_every_create_gets_a_delete(self):
        wl = ObjectLifetimeWorkload(num_objects=500, seed=6)
        creates, deletes = set(), set()
        for event in wl.events():
            if event.kind == "create":
                creates.add(event.obj_id)
            else:
                assert event.obj_id in creates, "delete before create"
                deletes.add(event.obj_id)
        assert creates == deletes
        assert len(creates) == 500

    def test_deterministic(self):
        a = [(e.kind, e.obj_id) for e in ObjectLifetimeWorkload(200, seed=7).events()]
        b = [(e.kind, e.obj_id) for e in ObjectLifetimeWorkload(200, seed=7).events()]
        assert a == b

    def test_owner_correlates_with_lifetime_class(self):
        wl = ObjectLifetimeWorkload(num_objects=3000, owners=3, seed=8)
        by_owner = {}
        for event in wl.events():
            if event.kind == "create":
                by_owner.setdefault(event.owner % 3, []).append(event.lifetime_class)
        # Owner archetype 0 is churny: mostly SHORT.
        short = sum(1 for c in by_owner[0] if c is LifetimeClass.SHORT)
        assert short / len(by_owner[0]) > 0.7
        # Owner archetype 2 is archival: mostly LONG.
        long = sum(1 for c in by_owner[2] if c is LifetimeClass.LONG)
        assert long / len(by_owner[2]) > 0.6

    def test_lifetime_scale_shortens_lives(self):
        def mean_life(scale):
            wl = ObjectLifetimeWorkload(num_objects=1000, lifetime_scale=scale, seed=9)
            created, lifetimes = {}, []
            for event in wl.events():
                if event.kind == "create":
                    created[event.obj_id] = event.time
                else:
                    lifetimes.append(event.time - created[event.obj_id])
            return np.mean(lifetimes)

        assert mean_life(0.1) < mean_life(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ObjectLifetimeWorkload(num_objects=0)
        with pytest.raises(ValueError):
            ObjectLifetimeWorkload(num_objects=1, lifetime_scale=0)


class TestMultitenant:
    def test_demand_alternates(self):
        tenants = [BurstyTenant(tenant_id=0, idle_zones=1, burst_zones=8)]
        events = list(demand_trace(tenants, 5000, seed=10))
        levels = {e.zones_wanted for e in events}
        assert levels == {1, 8}

    def test_mean_demand_formula(self):
        t = BurstyTenant(0, idle_zones=1, burst_zones=9, burst_start_prob=0.1, burst_end_prob=0.1)
        assert t.mean_demand == pytest.approx(5.0)

    def test_invalid_tenant(self):
        with pytest.raises(ValueError):
            BurstyTenant(0, idle_zones=5, burst_zones=2)
        with pytest.raises(ValueError):
            BurstyTenant(0, burst_start_prob=0.0)

    def test_initial_event_per_tenant(self):
        tenants = [BurstyTenant(tenant_id=i) for i in range(3)]
        events = list(demand_trace(tenants, 10, seed=11))
        initial = [e for e in events if e.time == 0]
        assert len(initial) == 3


class TestTraces:
    def test_round_trip_serialization(self):
        trace = synthesize_trace(
            [("write", 5), ("read", 5), ("trim", 5)], interarrival_us=10.0
        )
        lines = list(trace_lines(trace))
        parsed = list(parse_trace(lines))
        assert parsed == trace

    def test_parse_skips_comments_and_blanks(self):
        lines = ["# header", "", "0.000 write 3"]
        parsed = list(parse_trace(lines))
        assert parsed == [TraceRecord(TraceOp.WRITE, 3, 0.0)]

    def test_replay_counts_and_skips_unwritten_reads(self):
        disk = RamDisk(16)
        trace = synthesize_trace([("read", 1), ("write", 1), ("read", 1), ("trim", 1)])
        counts = replay_trace(trace, disk)
        assert counts == {"read": 1, "write": 1, "trim": 1, "skipped_reads": 1}

    def test_timestamps_monotonic(self):
        trace = synthesize_trace([("write", i) for i in range(5)], interarrival_us=2.0)
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(8.0)
