"""Tests for FleetSpec: validation, round-trips, content hashing."""

import json

import pytest

from repro.block.factory import DeviceSpec
from repro.fleet import FleetSpec

_CONV = DeviceSpec(kind="conventional-ftl", geometry="small", ftl={"op_ratio": 0.18})
_ZNS = DeviceSpec(
    kind="zns", geometry="small", blocks_per_zone=2, max_active_zones=14
)


def _spec(**overrides) -> FleetSpec:
    fields = {"mix": ((_CONV, 2), (_ZNS, 2)), "tenants": 4, "ticks": 10}
    fields.update(overrides)
    return FleetSpec(**fields)


class TestValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            FleetSpec(mix=())
        with pytest.raises(ValueError, match="mix"):
            FleetSpec(mix=((_CONV, 0),))

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("tenants", 0),
            ("placement", "random"),
            ("ticks", 0),
            ("warmup_ticks", -1),
            ("tick_us", 0.0),
            ("reads_per_tick", -1),
            ("utilization", 1.0),
            ("utilization", 0.0),
            ("lifetime_scale", 0.0),
            ("heavy_factor", 0),
        ],
    )
    def test_bad_field_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            _spec(**{field: bad})

    def test_burst_must_cover_idle(self):
        with pytest.raises(ValueError, match="idle_events"):
            _spec(idle_events=8, burst_events=4)


class TestDerivedViews:
    def test_device_expansion_preserves_rack_order(self):
        spec = _spec()
        assert spec.num_devices == 4
        assert spec.device_specs() == (_CONV, _CONV, _ZNS, _ZNS)

    def test_heavy_tenants_burst_harder(self):
        spec = _spec(heavy_every=4, heavy_factor=3)
        assert spec.is_heavy(0) and not spec.is_heavy(1)
        heavy, plain = spec.tenant_profile(0), spec.tenant_profile(1)
        assert heavy.burst_zones == 3 * plain.burst_zones

    def test_heavy_every_zero_disables_heterogeneity(self):
        spec = _spec(heavy_every=0)
        assert not any(spec.is_heavy(t) for t in range(8))


class TestSerializationFleet:
    def test_round_trip_through_json(self):
        spec = _spec(placement="pack", warmup_ticks=5, seed=11)
        wire = json.loads(json.dumps(spec.to_dict()))
        back = FleetSpec.from_dict(wire)
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_unknown_schema_version_rejected(self):
        payload = _spec().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            FleetSpec.from_dict(payload)

    def test_content_hash_tracks_every_axis(self):
        base = _spec()
        assert base.content_hash() != _spec(placement="pack").content_hash()
        assert base.content_hash() != _spec(seed=1).content_hash()
        assert base.content_hash() != _spec(mix=((_ZNS, 4),)).content_hash()

    def test_specs_are_hashable(self):
        assert len({_spec(), _spec(), _spec(seed=1)}) == 2
