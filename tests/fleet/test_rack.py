"""Tests for the rack simulation: sharding, determinism, merge==serial.

The headline invariant -- the one E16 and ``--jobs N`` byte-identity
rest on -- is that merging per-shard MetricsFrames reproduces the
serial fleet frame exactly, for any shard count and any seed. Hypothesis
drives that claim; the rest pins seeding, shard partitioning, and the
summary's bookkeeping on small racks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.factory import DeviceSpec
from repro.fleet import (
    FleetSpec,
    derive_seed,
    fleet_summary,
    shard_devices,
    simulate_device,
    simulate_fleet,
    simulate_shard,
)
from repro.obs.frame import MetricsFrame

# 64 blocks / 4096 pages per device: big enough to reach GC/reclaim,
# small enough that a whole fleet simulates in well under a second.
_FLASH = (("blocks_per_plane", 8),)
_CONV = DeviceSpec(
    kind="conventional-ftl", geometry="small", flash=_FLASH, ftl={"op_ratio": 0.18}
)
_ZNS = DeviceSpec(
    kind="zns", geometry="small", flash=_FLASH, blocks_per_zone=2, max_active_zones=14
)


def _fleet(mix, seed: int = 0, **overrides) -> FleetSpec:
    fields = dict(
        mix=mix,
        tenants=4,
        ticks=12,
        warmup_ticks=4,
        reads_per_tick=2,
        utilization=0.8,
        seed=seed,
    )
    fields.update(overrides)
    return FleetSpec(**fields)


class TestShardDevices:
    def test_round_robin_partition(self):
        assert shard_devices(5, 2) == [[0, 2, 4], [1, 3]]

    @given(n=st.integers(0, 40), shards=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_partition_is_balanced_and_complete(self, n, shards):
        parts = shard_devices(n, shards)
        assert len(parts) == shards
        assert sorted(d for part in parts for d in part) == list(range(n))
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            shard_devices(4, 0)


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(0, "reads", 1) == derive_seed(0, "reads", 1)
        assert derive_seed(0, "reads", 1) != derive_seed(0, "reads", 2)
        assert derive_seed(0, "reads", 1) != derive_seed(1, "reads", 1)

    def test_fits_a_63_bit_generator_seed(self):
        for parts in ((0,), ("demand", 3), (7, "faults", 12)):
            assert 0 <= derive_seed(*parts) < 2**63


class TestMergeEqualsSerial:
    @given(seed=st.integers(0, 2**32 - 1), shards=st.integers(2, 4))
    @settings(max_examples=5, deadline=None)
    def test_mixed_rack_any_seed_any_shard_count(self, seed, shards):
        spec = _fleet(((_CONV, 2), (_ZNS, 2)), seed=seed)
        serial = simulate_fleet(spec, shards=1)
        sharded = simulate_fleet(spec, shards=shards)
        assert sharded.to_dict() == serial.to_dict()

    def test_shard_frames_merge_to_the_fleet_frame(self):
        spec = _fleet(((_CONV, 1), (_ZNS, 2)))
        serial = simulate_fleet(spec, shards=1)
        merged = MetricsFrame.merge(
            simulate_shard(spec, shard, shards=3) for shard in range(3)
        )
        assert merged.to_dict() == serial.to_dict()

    def test_device_frames_are_shard_independent(self):
        # The per-device result must not know which shard ran it: the
        # device frame alone, via any shard slicing, is the same frame.
        spec = _fleet(((_ZNS, 2),), tenants=2)
        lone = simulate_device(spec, device_id=1)
        via_shard = simulate_shard(spec, shard=1, shards=2)
        assert via_shard.to_dict() == lone.to_dict()

    def test_simulate_shard_validates_range(self):
        spec = _fleet(((_CONV, 2),))
        with pytest.raises(ValueError, match="shard"):
            simulate_shard(spec, shard=2, shards=2)


class TestServingSemantics:
    # Enough warmup churn to exhaust the free pool, so GC (conventional)
    # and zone reclaim (ZNS) both run inside the measured span.
    @pytest.fixture(scope="class")
    def conv_frame(self):
        return simulate_fleet(_fleet(((_CONV, 2),), ticks=160, warmup_ticks=120))

    @pytest.fixture(scope="class")
    def zns_frame(self):
        return simulate_fleet(_fleet(((_ZNS, 2),), ticks=160, warmup_ticks=120))

    def test_both_arms_serve_reads_and_writes(self, conv_frame, zns_frame):
        for frame in (conv_frame, zns_frame):
            assert frame.counter("fleet.devices") == 2
            assert frame.counter("fleet.request.read.requests") > 0
            assert frame.counter("fleet.request.write.requests") > 0
            assert frame.counter("fleet.host_pages_written") > 0

    def test_zns_reclaims_by_zone_reset(self, zns_frame):
        assert zns_frame.counter("fleet.zone_resets") > 0

    def test_summary_shapes_and_sanity(self, conv_frame, zns_frame):
        for frame in (conv_frame, zns_frame):
            summary = fleet_summary(frame)
            assert summary["reads"] == frame.counter("fleet.request.read.requests")
            assert summary["read_p999_us"] >= summary["read_p99_us"] > 0
            assert summary["devices_failed"] == 0
            assert summary["fleet_wa"] >= 1.0
        # Device GC costs the conventional arm extra flash writes; the
        # zone-log arm reclaims by reset, so its WA stays at 1.0.
        assert fleet_summary(zns_frame)["fleet_wa"] == 1.0
        assert fleet_summary(conv_frame)["fleet_wa"] > 1.0

    def test_summary_of_empty_frame_is_all_zero(self):
        summary = fleet_summary(MetricsFrame())
        assert summary["fleet_wa"] == 0.0
        assert summary["read_p99_us"] == 0.0
        assert summary["capacity_lost_pct"] == 0.0

    def test_unsupported_serving_kind_rejected(self):
        dmz = DeviceSpec(
            kind="dmzoned",
            geometry="small",
            flash=_FLASH,
            blocks_per_zone=2,
            max_active_zones=14,
        )
        with pytest.raises(ValueError, match="serving"):
            simulate_device(_fleet(((dmz, 1),)), device_id=0)


class TestFaultArm:
    def test_faulted_rack_differs_but_still_merges_exactly(self):
        from repro.experiments.e16_fleet_serving import fleet_plan

        clean = _fleet(((_CONV, 2),), ticks=30, warmup_ticks=10)
        faulted = FleetSpec(
            **{
                **{k: v for k, v in clean.to_dict().items() if k != "schema_version"},
                "mix": ((_CONV.with_faults(fleet_plan(0), 4.0), 2),),
            }
        )
        serial = simulate_fleet(faulted, shards=1)
        sharded = simulate_fleet(faulted, shards=2)
        assert sharded.to_dict() == serial.to_dict()
        assert serial.to_dict() != simulate_fleet(clean).to_dict()


class TestEpochServing:
    """The epoch serving mode: batch dispatch, per-request bookkeeping.

    ``epoch=True`` routes each tenant-tick through the batch entry
    points and publishes one aggregate HostRequestBatchEvent per epoch.
    Merge==serial must keep holding shard-for-shard, the served workload
    (request counts, host pages) must match the per-request loop exactly,
    and the batch events must bin every latency the scalar path binned.
    """

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), shards=st.integers(1, 6))
    def test_epoch_merge_equals_serial(self, seed, shards):
        spec = _fleet((( _CONV, 2), (_ZNS, 2)), seed=seed)
        serial = simulate_fleet(spec, shards=1, epoch=True)
        merged = simulate_fleet(spec, shards=shards, epoch=True)
        assert merged.to_dict() == serial.to_dict()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_epoch_serves_the_per_request_workload(self, seed):
        spec = _fleet((( _CONV, 2), (_ZNS, 2)), seed=seed)
        scalar = simulate_fleet(spec, shards=1)
        epoch = simulate_fleet(spec, shards=1, epoch=True)
        # The epoch liberty is flash/GC interleaving *within* a tick;
        # what gets served is bit-identical.
        for key in (
            "fleet.request.write.requests",
            "fleet.request.read.requests",
            "fleet.host_pages_written",
            "fleet.reads_skipped",
        ):
            assert scalar.counter(key) == epoch.counter(key), key

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_batch_events_bin_every_latency(self, seed):
        spec = _fleet((( _CONV, 2), (_ZNS, 2)), seed=seed)
        scalar = simulate_fleet(spec, shards=1)
        epoch = simulate_fleet(spec, shards=1, epoch=True)
        for op in ("write", "read"):
            key = f"fleet.request.{op}.latency_us"
            assert epoch.observations(key) == epoch.counter(
                f"fleet.request.{op}.requests"
            )
            assert epoch.observations(key) == scalar.observations(key)

    def test_epoch_mode_defaults_off(self):
        spec = _fleet(((_CONV, 1), (_ZNS, 1)), seed=3)
        serial = simulate_fleet(spec, shards=1)
        assert simulate_fleet(spec).to_dict() == serial.to_dict()


class TestZoneMgmtArm:
    """Reset pressure + management faults: determinism and the E17 claim."""

    @staticmethod
    def _zns(pressure_us: float, faulted: bool) -> DeviceSpec:
        from repro.experiments.e17_reset_pressure import mgmt_plan

        spec = DeviceSpec(
            kind="zns",
            geometry="small",
            flash=_FLASH,
            blocks_per_zone=2,
            max_active_zones=14,
            zone_mgmt=(("reset_us", pressure_us),),
        )
        return spec.with_faults(mgmt_plan(0), 1.0) if faulted else spec

    def _spec(self, pressure_us: float, lifecycle: bool, seed: int = 0) -> FleetSpec:
        return _fleet(
            ((self._zns(pressure_us, faulted=True), 2),),
            seed=seed,
            ticks=160,
            warmup_ticks=120,
            lifetime_scale=0.05,
            zone_lifecycle=lifecycle,
        )

    @pytest.mark.parametrize("lifecycle", [False, True])
    def test_merge_equals_serial_with_mgmt_faults(self, lifecycle):
        spec = self._spec(5_000.0, lifecycle)
        serial = simulate_fleet(spec, shards=1)
        sharded = simulate_fleet(spec, shards=2)
        assert sharded.to_dict() == serial.to_dict()

    def test_lifecycle_arm_reports_its_counters(self):
        frame = simulate_fleet(self._spec(5_000.0, lifecycle=True))
        assert frame.counter("fleet.lifecycle.reserve_hits") > 0
        assert frame.counter("fleet.zone_resets") > 0
        naive = simulate_fleet(self._spec(5_000.0, lifecycle=False))
        assert naive.counter("fleet.lifecycle.reserve_hits") == 0
        assert naive.counter("fleet.reset_retries") > 0

    def test_managed_tail_no_worse_than_naive_under_pressure(self):
        naive = fleet_summary(simulate_fleet(self._spec(20_000.0, lifecycle=False)))
        managed = fleet_summary(simulate_fleet(self._spec(20_000.0, lifecycle=True)))
        assert managed["read_p99_us"] <= naive["read_p99_us"]
