"""ZoneLifecycleManager: reset-ahead, finish batching, retry, quarantine."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.flash.ops import OpKind
from repro.hostio.scheduler import HostIOState, ReclaimScheduler
from repro.hostio.zonelife import (
    ZoneLifecycleManager,
    ZoneLifecyclePolicy,
    ZoneLifecycleStats,
)
from repro.zns.device import ZNSDevice
from repro.zns.errors import ZoneOfflineError, ZoneResetFailedError
from repro.zns.zone import ZoneState


def tiny_geometry() -> ZonedGeometry:
    flash = FlashGeometry(
        page_size=512,
        pages_per_block=8,
        blocks_per_plane=4,
        planes_per_channel=2,
        channels=2,
    )
    return ZonedGeometry(flash=flash, blocks_per_zone=2, max_active_zones=8)


class BouncyDevice(ZNSDevice):
    """Real device whose resets bounce a scripted number of times."""

    def __init__(self, geometry, bounces: int, latency_us: float = 500.0):
        super().__init__(geometry)
        self.bounces_left = bounces
        self.bounce_latency_us = latency_us

    def reset_zone(self, zone_id: int):
        if self.bounces_left > 0:
            self.bounces_left -= 1
            raise ZoneResetFailedError("scripted bounce", latency_us=self.bounce_latency_us)
        return super().reset_zone(zone_id)


class _FlagScheduler(ReclaimScheduler):
    name = "flag"

    def __init__(self, granted: bool):
        self.granted = granted
        self.seen: list[HostIOState] = []

    def may_reclaim(self, state: HostIOState) -> bool:
        self.seen.append(state)
        return self.granted


class _EventLog:
    def __init__(self):
        self.events = []

    def on_event(self, event) -> None:
        self.events.append(event)


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ZoneLifecyclePolicy(reserve_zones=-1)
        with pytest.raises(ValueError):
            ZoneLifecyclePolicy(finish_batch=0)
        with pytest.raises(ValueError):
            ZoneLifecyclePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ZoneLifecyclePolicy(retry_backoff_us=-1.0)


class TestReserve:
    def test_dry_reserve_misses(self):
        manager = ZoneLifecycleManager(ZNSDevice(tiny_geometry()))
        assert manager.request_free_zone() is None
        assert manager.stats.reserve_misses == 1
        assert manager.stats.reserve_hits == 0

    def test_tick_resets_ahead_and_fills_the_reserve(self):
        device = ZNSDevice(tiny_geometry())
        manager = ZoneLifecycleManager(
            device, policy=ZoneLifecyclePolicy(reserve_zones=2)
        )
        for zone_id in (0, 1, 2):
            device.write_batch(zone_id, device.zone(zone_id).capacity_pages)
            assert device.zone(zone_id).state is ZoneState.FULL
            manager.note_reclaimable(zone_id)
        assert manager.backlog == 3
        ops = manager.tick()
        # The reserve fills only to target; the third zone stays queued.
        assert manager.reserve_size == 2
        assert manager.backlog == 1
        assert manager.stats.reset_ahead == 2
        assert manager.stats.resets == 2
        assert device.zone(0).state is ZoneState.EMPTY
        assert device.zone(1).state is ZoneState.EMPTY
        assert device.zone(2).state is ZoneState.FULL
        assert all(op.kind in (OpKind.ERASE, OpKind.MGMT) for op in ops)
        # Foreground allocation now hits.
        assert manager.request_free_zone() == 0
        assert manager.stats.reserve_hits == 1

    def test_budgeted_tick_fits_the_window_but_always_progresses(self):
        device = ZNSDevice(tiny_geometry())
        manager = ZoneLifecycleManager(
            device, policy=ZoneLifecyclePolicy(reserve_zones=3)
        )
        for zone_id in (0, 1, 2):
            device.write_batch(zone_id, device.zone(zone_id).capacity_pages)
            manager.note_reclaimable(zone_id)
        # Each reset is priced from the FTL's zone->block map.
        estimate = manager.reset_estimate_us(0)
        assert estimate == device.ftl.reset_cost_us(0) > 0
        # A window smaller than one erase still resets exactly one zone.
        manager.tick(budget_us=estimate / 10)
        assert manager.reserve_size == 1
        # A window fitting two more drains the rest of the target.
        manager.tick(budget_us=2 * estimate)
        assert manager.reserve_size == 3
        assert manager.stats.reset_ahead == 3

    def test_reset_now_counts_and_resets(self):
        device = ZNSDevice(tiny_geometry())
        device.write_batch(0, device.zone(0).capacity_pages)
        manager = ZoneLifecycleManager(device)
        manager.reset_now(0)
        assert device.zone(0).state is ZoneState.EMPTY
        assert manager.stats.resets == 1


class TestDeferredFinish:
    def test_flushes_in_finish_batch_sized_windows(self):
        device = ZNSDevice(tiny_geometry())
        manager = ZoneLifecycleManager(
            device, policy=ZoneLifecyclePolicy(reserve_zones=0, finish_batch=2)
        )
        for zone_id in range(3):
            device.append(zone_id, npages=1)
            manager.defer_finish(zone_id)
        assert manager.stats.deferred_finishes == 3
        assert manager.backlog == 3
        manager.tick()
        assert manager.stats.finishes == 2
        assert device.zone(0).state is ZoneState.FULL
        assert device.zone(1).state is ZoneState.FULL
        assert device.zone(2).state is ZoneState.IMPLICIT_OPEN
        manager.tick()
        assert manager.backlog == 0
        assert device.zone(2).state is ZoneState.FULL

    def test_finish_now_is_inline(self):
        device = ZNSDevice(tiny_geometry())
        device.append(0, npages=1)
        manager = ZoneLifecycleManager(device)
        manager.finish_now(0)
        assert device.zone(0).state is ZoneState.FULL
        assert manager.stats.finishes == 1


class TestRetryWithBackoff:
    def test_bounces_are_retried_and_charged(self):
        device = BouncyDevice(tiny_geometry(), bounces=2, latency_us=500.0)
        device.write_batch(0, device.zone(0).capacity_pages)
        manager = ZoneLifecycleManager(
            device,
            policy=ZoneLifecyclePolicy(max_retries=4, retry_backoff_us=200.0),
        )
        ops = manager.reset_now(0)
        assert device.zone(0).state is ZoneState.EMPTY
        assert manager.stats.resets == 1
        assert manager.stats.retries == 2
        # Backoff doubles: 200 then 400.
        assert manager.stats.backoff_us == pytest.approx(600.0)
        mgmt = [op for op in ops if op.kind is OpKind.MGMT]
        # Each bounce charges consumed device time + the next backoff.
        assert [op.latency_us for op in mgmt] == [700.0, 900.0]
        assert all(not op.uses_channel for op in mgmt)
        assert any(op.kind is OpKind.ERASE for op in ops)

    def test_non_retryable_errors_propagate(self):
        plan = FaultPlan(zone_offline_at=((0, 1),))
        device = ZNSDevice(tiny_geometry(), faults=FaultInjector(plan))
        device.write(0, npages=1)
        assert device.zone(1).state is ZoneState.OFFLINE
        manager = ZoneLifecycleManager(device)
        with pytest.raises(ZoneOfflineError):
            manager.finish_now(1)
        assert not manager.is_quarantined(1)


class TestQuarantine:
    def _exhausted(self, max_retries: int = 2):
        device = BouncyDevice(tiny_geometry(), bounces=10**9, latency_us=300.0)
        device.write_batch(0, device.zone(0).capacity_pages)
        log = device.tracer.attach(_EventLog())
        manager = ZoneLifecycleManager(
            device,
            policy=ZoneLifecyclePolicy(
                reserve_zones=2, max_retries=max_retries, retry_backoff_us=100.0
            ),
        )
        ops = manager.reset_now(0)
        return device, manager, log, ops

    def test_exhausted_retries_quarantine_and_degrade(self):
        device, manager, log, ops = self._exhausted(max_retries=2)
        assert manager.is_quarantined(0)
        assert manager.quarantined_zones == (0,)
        assert manager.stats.zones_quarantined == 1
        assert manager.stats.retries == 2  # the final attempt is not a retry
        assert manager.stats.capacity_lost_pages == device.zone(0).capacity_pages
        # Graceful degradation: the reserve aims lower instead of spinning.
        assert manager.reserve_target == 1
        assert manager.stats.resets == 0
        # Every attempt charged: 2 with backoff (300+100, 300+200), last bare.
        mgmt = [op.latency_us for op in ops if op.kind is OpKind.MGMT]
        assert mgmt == [400.0, 500.0, 300.0]
        events = [e for e in log.events if getattr(e, "kind", None) == "recovery"]
        assert len(events) == 1
        assert events[0].action == "zone-quarantined"
        assert events[0].zone == 0

    def test_quarantined_zones_leave_circulation(self):
        _, manager, _, _ = self._exhausted()
        manager.note_reclaimable(0)
        manager.defer_finish(0)
        assert manager.backlog == 0
        # Re-quarantining is idempotent.
        manager._quarantine(0, "reset")
        assert manager.stats.zones_quarantined == 1
        assert manager.reserve_target == 1

    def test_stats_round_trip(self):
        _, manager, _, _ = self._exhausted()
        payload = manager.stats.to_dict()
        assert payload["zones_quarantined"] == 1
        assert payload["retries"] == 2
        assert set(payload) == set(ZoneLifecycleStats().to_dict())


class TestSchedulerGating:
    def test_denied_window_defers_everything(self):
        device = ZNSDevice(tiny_geometry())
        device.write_batch(0, device.zone(0).capacity_pages)
        scheduler = _FlagScheduler(granted=False)
        manager = ZoneLifecycleManager(device, scheduler=scheduler)
        manager.note_reclaimable(0)
        assert manager.tick() == []
        assert manager.reserve_size == 0
        assert manager.backlog == 1
        assert len(scheduler.seen) == 1
        scheduler.granted = True
        manager.tick(HostIOState(now=5.0))
        assert manager.reserve_size == 1
        assert scheduler.seen[-1].now == 5.0


class TestTimedLifecycleWiring:
    def test_timed_host_rejects_a_foreign_lifecycle(self):
        from repro.hostio.timed import TimedZonedBlockDevice
        from repro.sim.engine import Engine

        geometry = tiny_geometry()
        stranger = ZNSDevice(geometry)
        lifecycle = ZoneLifecycleManager(stranger)
        with pytest.raises(ValueError):
            TimedZonedBlockDevice(Engine(), geometry=geometry, lifecycle=lifecycle)
