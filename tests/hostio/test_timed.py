"""Tests for the timed host stack (TimedZonedBlockDevice) and
erase-suspension / failure-propagation mechanics of the DES layers."""

import pytest

from repro.block.dmzoned import ZonedBlockConfig
from repro.flash.geometry import FlashGeometry, ZonedGeometry
from repro.flash.ops import FlashOp, OpKind
from repro.flash.service import FlashServiceModel
from repro.hostio.scheduler import AlwaysOnScheduler, IdleWindowScheduler
from repro.hostio.timed import TimedZonedBlockDevice
from repro.sim.engine import Engine, Timeout
from repro.sim.rng import make_rng


class TestTimedZonedBlockDevice:
    def test_read_write_latencies_recorded(self):
        engine = Engine()
        host = TimedZonedBlockDevice(engine, ZonedGeometry.small())

        def driver(engine):
            yield host.submit_write(0)
            yield host.submit_read(0)

        p = engine.process(driver(engine))
        engine.run(until=p)
        assert host.write_latency.count == 1
        assert host.read_latency.count == 1
        assert host.read_latency.mean > 0

    def test_background_reclaim_sustains_overwrites(self):
        engine = Engine()
        host = TimedZonedBlockDevice(
            engine,
            ZonedGeometry.small(),
            config=ZonedBlockConfig(op_ratio=0.11),
            scheduler=AlwaysOnScheduler(),
        )
        n = host.layer.logical_pages
        for lpn in range(n):
            host.layer.write(lpn)
        rng = make_rng(0)

        def writer(engine):
            for _ in range(n):
                yield host.submit_write(int(rng.integers(0, n)))

        w = engine.process(writer(engine))
        engine.run(until=w)
        assert host.layer.stats.gc_runs > 0
        host.layer.check_invariants()

    def test_idle_window_scheduler_defers_reclaim(self):
        """With no reads ever, idle-window reclaims from t=threshold on;
        the stack still makes progress (urgent path prevents deadlock)."""
        engine = Engine()
        host = TimedZonedBlockDevice(
            engine,
            ZonedGeometry.small(),
            config=ZonedBlockConfig(op_ratio=0.11, gc_low_zones=3, gc_high_zones=5),
            scheduler=IdleWindowScheduler(idle_threshold_us=100.0, urgent_free_zones=1),
        )
        n = host.layer.logical_pages
        for lpn in range(n):
            host.layer.write(lpn)
        rng = make_rng(1)

        def writer(engine):
            for _ in range(n // 2):
                yield host.submit_write(int(rng.integers(0, n)))

        w = engine.process(writer(engine))
        engine.run(until=w)
        assert host.write_latency.count == n // 2

    def test_reclaim_runs_in_bounded_quanta(self):
        engine = Engine()
        host = TimedZonedBlockDevice(
            engine,
            ZonedGeometry.small(),
            config=ZonedBlockConfig(op_ratio=0.11),
            reclaim_quantum_copies=2,
        )
        n = host.layer.logical_pages
        for lpn in range(n):
            host.layer.write(lpn)
        rng = make_rng(2)

        def writer(engine):
            for _ in range(n // 2):
                yield host.submit_write(int(rng.integers(0, n)))

        w = engine.process(writer(engine))
        engine.run(until=w)
        # Reclaim happened and copies were spread over many quanta.
        assert host.layer.stats.gc_pages_copied > 0


class TestEraseSuspension:
    def _run_read_behind_erase(self, slices):
        engine = Engine()
        geometry = FlashGeometry.small()
        svc = FlashServiceModel(
            engine, geometry, prioritize_reads=True, erase_suspend_slices=slices
        )
        same_plane = geometry.total_planes  # same plane as block 0
        erase = engine.process(svc.execute(FlashOp(OpKind.ERASE, 0, None, 0.0)))

        def late_read(engine):
            yield Timeout(engine, 10.0)  # arrive mid-erase
            latency = yield engine.process(
                svc.execute(FlashOp(OpKind.READ, same_plane, 0, 0.0))
            )
            return latency

        reader = engine.process(late_read(engine))
        read_latency = engine.run(until=reader)
        engine.run(until=erase)
        return read_latency, erase.value, svc.timing

    def test_monolithic_erase_blocks_read_fully(self):
        read_latency, _, timing = self._run_read_behind_erase(slices=1)
        assert read_latency >= timing.erase_us - 10.0

    def test_suspension_bounds_read_wait(self):
        read_latency, _, timing = self._run_read_behind_erase(slices=8)
        # Wait is at most ~one slice plus the read itself.
        assert read_latency < timing.erase_us / 8 + timing.read_total_us(4096) + 10.0

    def test_suspension_costs_the_erase(self):
        _, erase_mono, timing = self._run_read_behind_erase(slices=1)
        _, erase_sliced, _ = self._run_read_behind_erase(slices=8)
        # The sliced erase finishes later: it yielded to the read and paid
        # the resume overhead.
        assert erase_sliced > erase_mono

    def test_unpreempted_sliced_erase_pays_nothing(self):
        engine = Engine()
        svc = FlashServiceModel(engine, FlashGeometry.small(), erase_suspend_slices=4)
        p = engine.process(svc.execute(FlashOp(OpKind.ERASE, 0, None, 0.0)))
        latency = engine.run(until=p)
        assert latency == pytest.approx(svc.timing.erase_us)

    def test_invalid_slice_count_rejected(self):
        with pytest.raises(ValueError):
            FlashServiceModel(Engine(), FlashGeometry.small(), erase_suspend_slices=0)


class TestEngineFailureSemantics:
    def test_waited_failure_delivered_to_waiter(self):
        engine = Engine()

        def failing(engine):
            yield Timeout(engine, 1.0)
            raise RuntimeError("inner")

        def parent(engine):
            try:
                yield engine.process(failing(engine))
            except RuntimeError as exc:
                return f"caught {exc}"

        p = engine.process(parent(engine))
        assert engine.run(until=p) == "caught inner"

    def test_unwaited_failure_raises_from_run(self):
        engine = Engine()

        def failing(engine):
            yield Timeout(engine, 1.0)
            raise RuntimeError("orphan failure")

        engine.process(failing(engine))
        with pytest.raises(RuntimeError, match="orphan failure"):
            engine.run()

    def test_retry_pattern_survives_repeated_failures(self):
        engine = Engine()
        attempts = []

        def flaky(engine, attempt):
            yield Timeout(engine, 1.0)
            if attempt < 2:
                raise ValueError("try again")
            return "ok"

        def retrier(engine):
            for attempt in range(5):
                attempts.append(attempt)
                try:
                    result = yield engine.process(flaky(engine, attempt))
                    return result
                except ValueError:
                    continue

        p = engine.process(retrier(engine))
        assert engine.run(until=p) == "ok"
        assert attempts == [0, 1, 2]
