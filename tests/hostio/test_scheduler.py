"""Tests for reclaim schedulers."""

import pytest

from repro.hostio.scheduler import (
    AlwaysOnScheduler,
    HostIOState,
    IdleWindowScheduler,
    RateLimitedScheduler,
    make_scheduler,
)


def state(**kwargs):
    defaults = dict(now=1000.0, pending_reads=0, last_read_at=0.0, free_zones=5, low_watermark=2)
    defaults.update(kwargs)
    return HostIOState(**defaults)


class TestAlwaysOn:
    def test_always_allows(self):
        sched = AlwaysOnScheduler()
        assert sched.may_reclaim(state())
        assert sched.may_reclaim(state(pending_reads=10, free_zones=100))


class TestIdleWindow:
    def test_blocks_during_pending_reads(self):
        sched = IdleWindowScheduler(idle_threshold_us=500.0)
        assert not sched.may_reclaim(state(pending_reads=3))

    def test_blocks_shortly_after_read(self):
        sched = IdleWindowScheduler(idle_threshold_us=500.0)
        assert not sched.may_reclaim(state(now=1000.0, last_read_at=800.0))

    def test_allows_after_idle_threshold(self):
        sched = IdleWindowScheduler(idle_threshold_us=500.0)
        assert sched.may_reclaim(state(now=1000.0, last_read_at=400.0))

    def test_urgent_overrides_everything(self):
        sched = IdleWindowScheduler(idle_threshold_us=500.0, urgent_free_zones=2)
        assert sched.may_reclaim(state(pending_reads=5, free_zones=2))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            IdleWindowScheduler(idle_threshold_us=-1.0)


class TestRateLimited:
    def test_paces_reclaim(self):
        sched = RateLimitedScheduler(min_interval_us=1000.0)
        assert sched.may_reclaim(state(now=0.0))
        assert not sched.may_reclaim(state(now=500.0))
        assert sched.may_reclaim(state(now=1000.0))

    def test_urgent_overrides_pacing(self):
        sched = RateLimitedScheduler(min_interval_us=1000.0, urgent_free_zones=1)
        assert sched.may_reclaim(state(now=0.0))
        assert sched.may_reclaim(state(now=1.0, free_zones=1))

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            RateLimitedScheduler(min_interval_us=0.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("always-on", AlwaysOnScheduler),
        ("idle-window", IdleWindowScheduler),
        ("rate-limited", RateLimitedScheduler),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_kwargs_forwarded(self):
        sched = make_scheduler("idle-window", idle_threshold_us=123.0)
        assert sched.idle_threshold_us == 123.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("psychic")
