"""Tests for active-zone budget allocators."""

import pytest

from repro.hostio.zonealloc import (
    DynamicAllocator,
    FairShareAllocator,
    StaticPartitionAllocator,
    make_allocator,
)


class TestConstruction:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            StaticPartitionAllocator(max_active=0, tenants=2)
        with pytest.raises(ValueError):
            StaticPartitionAllocator(max_active=4, tenants=0)

    def test_too_many_tenants_rejected(self):
        with pytest.raises(ValueError):
            StaticPartitionAllocator(max_active=3, tenants=4)
        with pytest.raises(ValueError):
            FairShareAllocator(max_active=3, tenants=4)

    def test_factory(self):
        assert isinstance(make_allocator("static", 14, 2), StaticPartitionAllocator)
        assert isinstance(make_allocator("dynamic", 14, 2), DynamicAllocator)
        assert isinstance(make_allocator("fair-share", 14, 2), FairShareAllocator)
        with pytest.raises(ValueError):
            make_allocator("magic", 14, 2)


class TestStatic:
    def test_caps_at_share(self):
        alloc = StaticPartitionAllocator(max_active=14, tenants=4)
        assert alloc.share == 3
        for _ in range(3):
            assert alloc.try_acquire(0)
        assert not alloc.try_acquire(0)

    def test_cannot_borrow_idle_slots(self):
        alloc = StaticPartitionAllocator(max_active=14, tenants=2)
        for _ in range(7):
            assert alloc.try_acquire(0)
        # Tenant 1 is idle, yet tenant 0 cannot exceed its share.
        assert not alloc.try_acquire(0)
        assert alloc.total_held == 7

    def test_release_restores_budget(self):
        alloc = StaticPartitionAllocator(max_active=4, tenants=2)
        alloc.try_acquire(0)
        alloc.try_acquire(0)
        assert not alloc.try_acquire(0)
        alloc.release(0)
        assert alloc.try_acquire(0)


class TestDynamic:
    def test_work_conserving(self):
        alloc = DynamicAllocator(max_active=14, tenants=4)
        for _ in range(14):
            assert alloc.try_acquire(0)  # one tenant can take everything
        assert not alloc.try_acquire(1)

    def test_pool_bound(self):
        alloc = DynamicAllocator(max_active=4, tenants=2)
        grants = sum(alloc.try_acquire(i % 2) for i in range(10))
        assert grants == 4


class TestFairShare:
    def test_guarantee_always_available(self):
        alloc = FairShareAllocator(max_active=14, tenants=4)  # guarantee 3
        # Tenant 0 tries to hog the pool.
        taken = 0
        while alloc.try_acquire(0):
            taken += 1
        # Tenants 1-3 must each still get their guarantee of 3.
        for tenant in (1, 2, 3):
            for _ in range(3):
                assert alloc.try_acquire(tenant), f"guarantee broken for {tenant}"
        assert alloc.total_held <= 14
        assert taken >= 3  # tenant 0 got at least its own guarantee

    def test_borrowing_when_others_idle_partially(self):
        alloc = FairShareAllocator(max_active=8, tenants=2)  # guarantee 4
        for _ in range(4):
            assert alloc.try_acquire(0)
        # Tenant 1 holds 2 of its 4-slot guarantee; 2 slots must stay
        # reserved for it, so tenant 0 cannot borrow.
        alloc.try_acquire(1)
        alloc.try_acquire(1)
        assert not alloc.try_acquire(0)
        # Once tenant 1 reaches its guarantee, free slots are borrowable.
        alloc.try_acquire(1)
        alloc.try_acquire(1)
        assert alloc.total_held == 8

    def test_release_accounting(self):
        alloc = FairShareAllocator(max_active=4, tenants=2)
        with pytest.raises(ValueError):
            alloc.release(0)
        alloc.try_acquire(0)
        alloc.release(0)
        assert alloc.total_held == 0


class TestStats:
    def test_denial_rate(self):
        alloc = StaticPartitionAllocator(max_active=2, tenants=2)
        alloc.try_acquire(0)
        alloc.try_acquire(0)  # denied (share is 1)
        assert alloc.stats.grants == 1
        assert alloc.stats.denials == 1
        assert alloc.stats.denial_rate == pytest.approx(0.5)

    def test_unknown_tenant_rejected(self):
        alloc = DynamicAllocator(max_active=2, tenants=2)
        with pytest.raises(ValueError):
            alloc.try_acquire(5)
