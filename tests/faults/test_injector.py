"""FaultInjector: seeded determinism, schedules, ladders, and tallies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.flash.errors import UncorrectableReadError
from repro.obs.events import FaultEvent
from repro.obs.tracer import Tracer


def drive(injector: FaultInjector, n: int = 200) -> list:
    """A fixed operation stream; returns every hook decision in order."""
    decisions = []
    for i in range(n):
        kind = i % 4
        if kind == 0:
            decisions.append(injector.on_program(i % 8, i, 200.0))
        elif kind == 1:
            try:
                decisions.append(("read", injector.on_read(i % 8, i)))
            except UncorrectableReadError as exc:
                decisions.append(("lost", exc.latency_us))
        elif kind == 2:
            decisions.append(injector.on_erase(i % 8))
        else:
            decisions.append(injector.on_program_batch(4, i % 8, i, 800.0))
    return decisions


class TestDeterminism:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_same_plan_same_decisions(self, seed):
        plan = FaultPlan(
            seed=seed,
            program_fail_prob=0.1,
            erase_fail_prob=0.1,
            read_error_prob=0.2,
            latency_spike_prob=0.05,
            grown_bad_blocks=((30, 2), (90, 5)),
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert drive(a) == drive(b)
        assert a.summary() == b.summary()
        assert a.ops == b.ops

    def test_different_seeds_diverge(self):
        plans = [
            FaultPlan(seed=s, program_fail_prob=0.3, read_error_prob=0.3)
            for s in (1, 2)
        ]
        assert drive(FaultInjector(plans[0])) != drive(FaultInjector(plans[1]))


class TestSchedules:
    def test_grown_bad_block_fires_at_op_index(self):
        injector = FaultInjector(FaultPlan(grown_bad_blocks=((5, 3),)))
        # Before the scheduled op index the block erases fine.
        for i in range(4):
            assert not injector.on_erase(3)
        assert injector.ops == 4
        injector.on_program(0, 0, 200.0)  # op 5 reached
        assert injector.on_erase(3)  # the next erase of block 3 fails
        assert not injector.on_erase(3)  # and only that one (retire is the caller's)
        assert injector.summary()["grown-bad-block"] == 1

    def test_zone_offline_fires_once(self):
        injector = FaultInjector(FaultPlan(zone_offline_at=((2, 7), (2, 9))))
        assert injector.due_zone_offlines() == []  # not due at op 0
        injector.on_program(0, 0, 200.0)
        injector.on_program(0, 1, 200.0)
        assert injector.due_zone_offlines() == [7, 9]
        assert injector.due_zone_offlines() == []  # consumed

    def test_batch_ops_advance_schedule_clock(self):
        injector = FaultInjector(FaultPlan(zone_offline_at=((100, 1),)))
        injector.on_program_batch(100, 0, 0, 800.0)
        assert injector.due_zone_offlines() == [1]


class TestLadder:
    def test_first_rung_success_costs_one_rung(self):
        plan = FaultPlan(
            read_error_prob=1.0, retry_success_prob=1.0,
            retry_ladder_us=(40.0, 90.0),
        )
        extra = FaultInjector(plan).on_read(0, 0)
        assert extra == 40.0

    def test_exhausted_ladder_raises_with_full_cost(self):
        plan = FaultPlan(
            read_error_prob=1.0, retry_success_prob=0.0,
            retry_ladder_us=(40.0, 90.0, 180.0),
        )
        injector = FaultInjector(plan)
        with pytest.raises(UncorrectableReadError) as excinfo:
            injector.on_read(0, 0)
        assert excinfo.value.latency_us == 40.0 + 90.0 + 180.0
        assert injector.summary() == {"read-uncorrectable": 1}

    def test_spike_penalty_added(self):
        plan = FaultPlan(latency_spike_prob=1.0, latency_spike_us=500.0)
        injector = FaultInjector(plan)
        fault, extra = injector.on_program(0, 0, 200.0)
        assert not fault
        assert extra == 500.0


class TestObservability:
    def test_fired_faults_publish_events(self):
        tracer = Tracer()
        seen = []
        tracer.attach(type("Sink", (), {"on_event": lambda self, e: seen.append(e)})())
        plan = FaultPlan(program_fail_prob=1.0)
        injector = FaultInjector(plan).bind(tracer)
        fault, _ = injector.on_program(3, 97, 200.0)
        assert fault
        (event,) = seen
        assert isinstance(event, FaultEvent)
        assert (event.fault, event.block, event.page) == ("program-fail", 3, 97)
        assert event.op_index == 1

    def test_summary_is_sorted_and_json_safe(self):
        plan = FaultPlan(program_fail_prob=1.0, erase_fail_prob=1.0)
        injector = FaultInjector(plan)
        injector.on_program(0, 0, 200.0)
        injector.on_erase(0)
        assert list(injector.summary()) == sorted(injector.summary())
        assert all(isinstance(v, int) for v in injector.summary().values())
