"""FaultPlan: validation, the armed contract, and rate scaling."""

import dataclasses

import pytest

from repro.faults import FaultPlan


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "program_fail_prob",
            "erase_fail_prob",
            "read_error_prob",
            "retry_success_prob",
            "latency_spike_prob",
        ],
    )
    def test_probabilities_bounded(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: -0.1})

    def test_negative_ladder_rung_rejected(self):
        with pytest.raises(ValueError, match="retry_ladder_us"):
            FaultPlan(retry_ladder_us=(40.0, -1.0))

    def test_negative_spike_rejected(self):
        with pytest.raises(ValueError, match="latency_spike_us"):
            FaultPlan(latency_spike_us=-5.0)

    @pytest.mark.parametrize("field", ["grown_bad_blocks", "zone_offline_at"])
    def test_negative_schedule_entries_rejected(self, field):
        with pytest.raises(ValueError, match="negative"):
            FaultPlan(**{field: ((-1, 3),)})
        with pytest.raises(ValueError, match="negative"):
            FaultPlan(**{field: ((100, -3),)})

    def test_lists_frozen_to_tuples(self):
        plan = FaultPlan(
            retry_ladder_us=[10.0, 20.0],
            grown_bad_blocks=[(5, 1)],
            zone_offline_at=[(9, 2)],
        )
        assert plan.retry_ladder_us == (10.0, 20.0)
        assert plan.grown_bad_blocks == ((5, 1),)
        assert plan.zone_offline_at == ((9, 2),)

    def test_plan_is_hashable(self):
        a = FaultPlan(seed=3, program_fail_prob=0.1)
        b = FaultPlan(seed=3, program_fail_prob=0.1)
        assert a == b
        assert hash(a) == hash(b)


class TestArmed:
    def test_default_plan_disarmed(self):
        assert not FaultPlan().armed

    def test_seed_alone_does_not_arm(self):
        assert not FaultPlan(seed=42).armed

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"program_fail_prob": 0.01},
            {"erase_fail_prob": 0.01},
            {"read_error_prob": 0.01},
            {"latency_spike_prob": 0.01},
            {"grown_bad_blocks": ((10, 0),)},
            {"zone_offline_at": ((10, 0),)},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_any_single_fault_arms(self, kwargs):
        assert FaultPlan(**kwargs).armed


class TestScaled:
    def test_rates_multiply_and_cap(self):
        plan = FaultPlan(program_fail_prob=0.4, read_error_prob=0.01)
        doubled = plan.scaled(2.0)
        assert doubled.program_fail_prob == 0.8
        assert doubled.read_error_prob == 0.02
        assert plan.scaled(10.0).program_fail_prob == 1.0

    def test_schedules_survive_scaling(self):
        plan = FaultPlan(
            program_fail_prob=0.1,
            grown_bad_blocks=((100, 7),),
            zone_offline_at=((200, 3),),
        )
        scaled = plan.scaled(0.0)
        assert scaled.program_fail_prob == 0.0
        assert scaled.grown_bad_blocks == plan.grown_bad_blocks
        assert scaled.zone_offline_at == plan.zone_offline_at
        # Schedules keep the plan armed even with every rate zeroed.
        assert scaled.armed

    def test_scale_zero_disarms_pure_rate_plan(self):
        assert not FaultPlan(program_fail_prob=0.5).scaled(0.0).armed

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FaultPlan().scaled(-1.0)

    def test_original_plan_untouched(self):
        plan = FaultPlan(program_fail_prob=0.1)
        plan.scaled(3.0)
        assert plan.program_fail_prob == 0.1
        assert dataclasses.asdict(plan) == dataclasses.asdict(
            FaultPlan(program_fail_prob=0.1)
        )
